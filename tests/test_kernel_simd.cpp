// Byte-identity and dispatch tests for the SIMD tiers (kernels/simd.hpp,
// kernels/simd_avx2.hpp, kernels/simd_avx512.hpp, the SELL plans):
//   * capability reporting and the runtime ISA ladder (environment
//     parsing, set_simd_level / set_simd_enabled round trips against the
//     cached host probe, forced-scalar fallback),
//   * exhaustive building blocks on both vector rungs — gather_pairs over
//     all 256x256 operand pairs of the add and mul tables, the transposed
//     add and mul tables, the in-register 256-entry lookups (pshufb
//     cascade and vpermi2b), the 8x8 and 16x16 byte transposes,
//   * every vectorized kernel against its scalar LUT recurrence over
//     awkward lengths (0, 1, lane-width +/- 1, large odd tails) and
//     unaligned slices, on raw random encodings (all 256 bit patterns,
//     including the formats' NaN/inf/NaR codes),
//   * SELL-8/SELL-16 plan construction properties (validity guards,
//     padding replication, empty rows) and both sliced SpMV kernels,
//   * the multi-vector primitives against k single-vector calls, and
//     arnoldi_step_batch against per-lane arnoldi_step,
//   * dispatch-level identity with the ladder pinned to every level
//     (scalar / avx2 / avx512), pairwise via the scalar anchor, including
//     an end-to-end experiment run whose result CSV must be byte-identical
//     at every forced level.
// On hosts without AVX2/AVX-512 (or builds with the tiers compiled out)
// the forced-level comparisons degenerate to lower rungs — the cap
// semantics make that automatic — and the intrinsic-level tests skip, so
// the suite is meaningful in every CI configuration.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/arnoldi.hpp"
#include "core/experiment.hpp"
#include "core/results_io.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "kernels/accel.hpp"
#include "kernels/simd.hpp"
#include "kernels/simd_avx2.hpp"
#include "kernels/simd_avx512.hpp"
#include "kernels/spmm.hpp"
#include "kernels/spmv.hpp"
#include "kernels/vector_ops.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

/// RAII pin of the ISA ladder cap (kernels::SimdLevel; mirrors LutGuard in
/// test_kernel_accel.cpp).
class LevelGuard {
 public:
  explicit LevelGuard(kernels::SimdLevel level) : previous_(kernels::set_simd_level(level)) {}
  ~LevelGuard() { kernels::set_simd_level(previous_); }
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  kernels::SimdLevel previous_;
};

/// Every ladder cap the dispatch-identity tests pin. Forcing a cap above
/// what the host executes is deliberate — the cap semantics degrade it to
/// the best available rung, so the comparisons stay meaningful (and test
/// exactly that degradation) on AVX2-only or scalar hosts.
const kernels::SimdLevel kLevels[] = {kernels::SimdLevel::scalar, kernels::SimdLevel::avx2,
                                      kernels::SimdLevel::avx512};

const char* level_name(kernels::SimdLevel level) {
  switch (level) {
    case kernels::SimdLevel::scalar: return "scalar";
    case kernels::SimdLevel::avx2: return "avx2";
    case kernels::SimdLevel::avx512: return "avx512";
    default: return "auto";
  }
}

/// Vector lengths that stress every code path: empty, scalar tails around
/// the 8-lane and 32-byte widths, the kChainBlock boundary, and large odd
/// sizes that exercise many blocks plus a tail.
const std::size_t kLengths[] = {0,  1,  2,  3,  7,   8,   9,   15,  16,   17,   31,  32,
                                33, 63, 64, 65, 127, 128, 129, 255, 1000, 4097};

/// Raw random encodings — every byte value occurs, so the formats' NaN /
/// inf / NaR / -0 codes all flow through the kernels.
std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u64() & 0xff);
  return v;
}

template <typename T>
std::vector<T> from_bytes(const std::vector<std::uint8_t>& bytes) {
  using Codec = ScalarCodec<T>;
  std::vector<T> v;
  v.reserve(bytes.size());
  for (const std::uint8_t b : bytes)
    v.push_back(Codec::from_bits(static_cast<typename Codec::Storage>(b)));
  return v;
}

template <typename T>
void expect_same_bits(const std::vector<T>& a, const std::vector<T>& b, const char* what) {
  using Codec = ScalarCodec<T>;
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(Codec::to_bits(a[i]), Codec::to_bits(b[i]))
        << NumTraits<T>::name() << " " << what << " at " << i;
}

// -- Capability reporting and the runtime switch ----------------------------

TEST(KernelSimd, CapsConsistent) {
  const kernels::SimdCaps caps = kernels::simd_caps();
  EXPECT_EQ(caps.compiled, kernels::simd_compiled());
  EXPECT_EQ(caps.avx512_compiled, kernels::simd_avx512_compiled());
  EXPECT_EQ(caps.compiled && caps.avx2, kernels::simd_supported());
  EXPECT_EQ(caps.enabled, kernels::simd_enabled());
  EXPECT_EQ(caps.level, kernels::simd_level());
  EXPECT_EQ(caps.enabled, caps.level != kernels::SimdLevel::scalar);
  EXPECT_EQ(caps.active, caps.compiled && caps.avx2 && caps.enabled);
  EXPECT_EQ(caps.active, kernels::simd_active());
  EXPECT_EQ(caps.avx512_active, kernels::simd_avx512_active());
  EXPECT_EQ(caps.vbmi_active, kernels::simd_vbmi_active());
  // The ladder is strictly layered: each rung implies the one below it.
  EXPECT_TRUE(!caps.avx512_compiled || caps.compiled);
  EXPECT_TRUE(!caps.avx512_active || caps.active);
  EXPECT_TRUE(!caps.vbmi_active || caps.avx512_active);
  EXPECT_EQ(caps.avx512_active,
            caps.avx512_compiled && caps.avx512f && caps.avx512bw && caps.active &&
                static_cast<int>(caps.level) >= static_cast<int>(kernels::SimdLevel::avx512));
  EXPECT_STREQ(caps.isa, caps.avx512_active ? "avx512" : (caps.active ? "avx2" : "scalar"));
#if !MFLA_SIMD_COMPILED
  EXPECT_FALSE(caps.compiled);
  EXPECT_FALSE(caps.avx2);  // simd_supported() is hard false when compiled out
  EXPECT_FALSE(caps.active);
#endif
#if !MFLA_SIMD_AVX512_COMPILED
  EXPECT_FALSE(caps.avx512_compiled);
  EXPECT_FALSE(caps.avx512f);  // probe short-circuits when the rung is out
  EXPECT_FALSE(caps.avx512_active);
  EXPECT_FALSE(caps.vbmi_active);
#endif
}

TEST(KernelSimd, EnvParsing) {
  EXPECT_FALSE(kernels::simd_env_requests_off(nullptr));
  EXPECT_TRUE(kernels::simd_env_requests_off("0"));
  EXPECT_TRUE(kernels::simd_env_requests_off("off"));
  EXPECT_TRUE(kernels::simd_env_requests_off("OFF"));
  EXPECT_TRUE(kernels::simd_env_requests_off("false"));
  EXPECT_FALSE(kernels::simd_env_requests_off(""));
  EXPECT_FALSE(kernels::simd_env_requests_off("1"));
  EXPECT_FALSE(kernels::simd_env_requests_off("on"));
  EXPECT_FALSE(kernels::simd_env_requests_off("Off"));  // deliberate: exact tokens only
}

TEST(KernelSimd, EnvLevelParsing) {
  using kernels::SimdLevel;
  EXPECT_EQ(kernels::simd_env_level(nullptr), SimdLevel::auto_);
  // Every off token pins scalar, plus the explicit level name.
  EXPECT_EQ(kernels::simd_env_level("0"), SimdLevel::scalar);
  EXPECT_EQ(kernels::simd_env_level("off"), SimdLevel::scalar);
  EXPECT_EQ(kernels::simd_env_level("OFF"), SimdLevel::scalar);
  EXPECT_EQ(kernels::simd_env_level("false"), SimdLevel::scalar);
  EXPECT_EQ(kernels::simd_env_level("scalar"), SimdLevel::scalar);
  EXPECT_EQ(kernels::simd_env_level("avx2"), SimdLevel::avx2);
  EXPECT_EQ(kernels::simd_env_level("avx512"), SimdLevel::avx512);
  // Everything else means best-available, exactly like unset.
  EXPECT_EQ(kernels::simd_env_level("1"), SimdLevel::auto_);
  EXPECT_EQ(kernels::simd_env_level("on"), SimdLevel::auto_);
  EXPECT_EQ(kernels::simd_env_level("auto"), SimdLevel::auto_);
  EXPECT_EQ(kernels::simd_env_level(""), SimdLevel::auto_);
  EXPECT_EQ(kernels::simd_env_level("AVX512"), SimdLevel::auto_);  // exact tokens only
}

TEST(KernelSimd, SetEnabledReturnsPrevious) {
  const bool initial = kernels::simd_enabled();
  EXPECT_EQ(kernels::set_simd_enabled(false), initial);
  EXPECT_FALSE(kernels::simd_enabled());
  EXPECT_FALSE(kernels::simd_active());  // forced scalar regardless of host
  EXPECT_EQ(kernels::set_simd_enabled(true), false);
  EXPECT_TRUE(kernels::simd_enabled());
  kernels::set_simd_enabled(initial);
}

TEST(KernelSimd, SetLevelReturnsPreviousAndCapsFollow) {
  using kernels::SimdLevel;
  const SimdLevel initial = kernels::simd_level();
  for (const SimdLevel level :
       {SimdLevel::scalar, SimdLevel::avx2, SimdLevel::avx512, SimdLevel::auto_}) {
    const SimdLevel before = kernels::simd_level();
    EXPECT_EQ(kernels::set_simd_level(level), before);
    EXPECT_EQ(kernels::simd_level(), level);
    EXPECT_EQ(kernels::simd_enabled(), level != SimdLevel::scalar);
  }
  kernels::set_simd_level(initial);
}

// The immutable parts of the caps report come from a one-time host probe;
// toggling the runtime switch back and forth must round-trip the mutable
// parts and leave the cached fields bit-for-bit untouched.
TEST(KernelSimd, SetEnabledRoundTripsAgainstCachedCaps) {
  const kernels::SimdCaps before = kernels::simd_caps();
  for (int round = 0; round < 3; ++round) {
    kernels::set_simd_enabled(false);
    const kernels::SimdCaps off = kernels::simd_caps();
    EXPECT_FALSE(off.enabled);
    EXPECT_FALSE(off.active);
    EXPECT_FALSE(off.avx512_active);
    EXPECT_STREQ(off.isa, "scalar");
    kernels::set_simd_enabled(true);
    const kernels::SimdCaps on = kernels::simd_caps();
    EXPECT_TRUE(on.enabled);
    EXPECT_EQ(on.level, kernels::SimdLevel::auto_);
    for (const kernels::SimdCaps& caps : {off, on}) {
      EXPECT_EQ(caps.compiled, before.compiled);
      EXPECT_EQ(caps.avx512_compiled, before.avx512_compiled);
      EXPECT_EQ(caps.avx2, before.avx2);
      EXPECT_EQ(caps.avx512f, before.avx512f);
      EXPECT_EQ(caps.avx512bw, before.avx512bw);
      EXPECT_EQ(caps.avx512vbmi, before.avx512vbmi);
    }
    EXPECT_EQ(on.active, before.compiled && before.avx2);
  }
  kernels::set_simd_level(before.level);
}

#if MFLA_ENABLE_LUT

// -- Exhaustive building blocks ---------------------------------------------

/// The transposed add table is a pure data-layout property (no intrinsics),
/// so it is checked in every build: add_t[(b << 8) | a] == add[(a << 8) | b].
template <typename T>
void check_add_transpose() {
  const auto& lut = kernels::accel::Lut8<T>::instance();
  const std::uint8_t* add = lut.add_data();
  const std::uint8_t* addt = lut.add_t_data();
  for (std::size_t a = 0; a < 256; ++a)
    for (std::size_t b = 0; b < 256; ++b)
      ASSERT_EQ(addt[(b << 8) | a], add[(a << 8) | b])
          << NumTraits<T>::name() << " at (" << a << ", " << b << ")";
}

TEST(KernelSimd, AddTransposeOFP8E4M3) { check_add_transpose<OFP8E4M3>(); }
TEST(KernelSimd, AddTransposeOFP8E5M2) { check_add_transpose<OFP8E5M2>(); }
TEST(KernelSimd, AddTransposePosit8) { check_add_transpose<Posit8>(); }
TEST(KernelSimd, AddTransposeTakum8) { check_add_transpose<Takum8>(); }

/// Same for the transposed mul table behind mul_t_row (the VBMI scal path):
/// mul_t_row(alpha)[x] must be mul(x, alpha) — the scal recurrence's
/// operand order — for every (alpha, x) pair, never assuming the format's
/// multiply commutes bitwise.
template <typename T>
void check_mul_transpose() {
  const auto& lut = kernels::accel::Lut8<T>::instance();
  const std::uint8_t* mul = lut.mul_data();
  for (std::size_t alpha = 0; alpha < 256; ++alpha) {
    const std::uint8_t* row =
        lut.mul_t_row(static_cast<typename ScalarCodec<T>::Storage>(alpha));
    for (std::size_t x = 0; x < 256; ++x)
      ASSERT_EQ(row[x], mul[(x << 8) | alpha])
          << NumTraits<T>::name() << " at (" << alpha << ", " << x << ")";
  }
}

TEST(KernelSimd, MulTransposeOFP8E4M3) { check_mul_transpose<OFP8E4M3>(); }
TEST(KernelSimd, MulTransposeOFP8E5M2) { check_mul_transpose<OFP8E5M2>(); }
TEST(KernelSimd, MulTransposePosit8) { check_mul_transpose<Posit8>(); }
TEST(KernelSimd, MulTransposeTakum8) { check_mul_transpose<Takum8>(); }

#if MFLA_SIMD_COMPILED

#define MFLA_SKIP_WITHOUT_AVX2() \
  if (!kernels::simd_supported()) GTEST_SKIP() << "host does not execute AVX2"

/// gather_pairs over all 65536 operand pairs of both operation tables.
template <typename T>
void check_gather_pairs_exhaustive() {
  MFLA_SKIP_WITHOUT_AVX2();
  const auto& lut = kernels::accel::Lut8<T>::instance();
  std::vector<std::uint8_t> a(65536), b(65536), out(65536);
  for (std::size_t i = 0; i < 65536; ++i) {
    a[i] = static_cast<std::uint8_t>(i >> 8);
    b[i] = static_cast<std::uint8_t>(i & 0xff);
  }
  for (const std::uint8_t* table : {lut.add_data(), lut.mul_data()}) {
    kernels::simd::gather_pairs(table, a.data(), b.data(), out.data(), out.size());
    for (std::size_t i = 0; i < 65536; ++i)
      ASSERT_EQ(out[i], table[i]) << NumTraits<T>::name() << " pair " << i;
  }
}

TEST(KernelSimd, GatherPairsExhaustiveOFP8E4M3) { check_gather_pairs_exhaustive<OFP8E4M3>(); }
TEST(KernelSimd, GatherPairsExhaustiveOFP8E5M2) { check_gather_pairs_exhaustive<OFP8E5M2>(); }
TEST(KernelSimd, GatherPairsExhaustivePosit8) { check_gather_pairs_exhaustive<Posit8>(); }
TEST(KernelSimd, GatherPairsExhaustiveTakum8) { check_gather_pairs_exhaustive<Takum8>(); }

TEST(KernelSimd, GatherPairsTailsAndAliasing) {
  MFLA_SKIP_WITHOUT_AVX2();
  const auto& lut = kernels::accel::Lut8<Posit8>::instance();
  for (const std::size_t n : kLengths) {
    const auto a = random_bytes(n, 100 + n);
    auto b = random_bytes(n, 200 + n);
    std::vector<std::uint8_t> want(n);
    for (std::size_t i = 0; i < n; ++i)
      want[i] = lut.add_data()[(static_cast<std::size_t>(a[i]) << 8) | b[i]];
    // In-place on the second operand, as the axpy kernel uses it.
    kernels::simd::gather_pairs(lut.add_data(), a.data(), b.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(b[i], want[i]) << "n=" << n << " i=" << i;
  }
}

TEST(KernelSimd, Lookup256MapExhaustive) {
  MFLA_SKIP_WITHOUT_AVX2();
  const auto& lut = kernels::accel::Lut8<Takum8>::instance();
  const std::uint8_t* row = lut.mul_row(0x37);
  for (const std::size_t n : kLengths) {
    std::vector<std::uint8_t> x(n), out(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<std::uint8_t>(i * 7 + 3);
    kernels::simd::lookup256_map(row, x.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], row[x[i]]) << "n=" << n << " i=" << i;
    // In-place form (scal).
    kernels::simd::lookup256_map(row, x.data(), x.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(x[i], out[i]) << "n=" << n << " i=" << i;
  }
}

TEST(KernelSimd, Transpose8x8Bytes) {
  MFLA_SKIP_WITHOUT_AVX2();
  const std::size_t ldx = 11;  // deliberately not 8: columns are strided
  std::vector<std::uint8_t> x(8 * ldx);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<std::uint8_t>(i * 13 + 5);
  std::uint8_t out[64];
  kernels::simd::transpose8x8_bytes(x.data(), ldx, out);
  for (std::size_t e = 0; e < 8; ++e)
    for (std::size_t c = 0; c < 8; ++c)
      ASSERT_EQ(out[e * 8 + c], x[c * ldx + e]) << "e=" << e << " c=" << c;
}

// -- Vectorized kernels against their scalar recurrences --------------------

template <typename T>
void check_bits_kernels() {
  MFLA_SKIP_WITHOUT_AVX2();
  using Codec = ScalarCodec<T>;
  const auto& lut = kernels::accel::Lut8<T>::instance();
  const std::uint8_t zero = Codec::to_bits(T(0));
  const std::uint8_t* add = lut.add_data();
  const std::uint8_t* addt = lut.add_t_data();
  const std::uint8_t* mul = lut.mul_data();
  for (const std::size_t n : kLengths) {
    const auto x = random_bytes(n, 300 + n);
    const auto y = random_bytes(n, 400 + n);

    // dot: the scalar chain acc := addt[(mul[(x<<8)|y] << 8) | acc].
    std::size_t acc = zero;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t p = mul[(static_cast<std::size_t>(x[i]) << 8) | y[i]];
      acc = addt[(static_cast<std::size_t>(p) << 8) + acc];
    }
    ASSERT_EQ(kernels::simd::dot_bits(mul, addt, x.data(), y.data(), n, zero),
              static_cast<std::uint8_t>(acc))
        << NumTraits<T>::name() << " dot n=" << n;

    // axpy with a fixed alpha row.
    const std::uint8_t* row = lut.mul_row(0x5a);
    std::vector<std::uint8_t> got = y, want = y;
    for (std::size_t i = 0; i < n; ++i)
      want[i] = add[(static_cast<std::size_t>(want[i]) << 8) | row[x[i]]];
    kernels::simd::axpy_bits(add, row, x.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], want[i]) << NumTraits<T>::name() << " axpy n=" << n << " i=" << i;

    // scal as a pure map.
    got = x;
    kernels::simd::scal_bits(row, got.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], row[x[i]]) << NumTraits<T>::name() << " scal n=" << n << " i=" << i;
  }
}

TEST(KernelSimd, BitsKernelsOFP8E4M3) { check_bits_kernels<OFP8E4M3>(); }
TEST(KernelSimd, BitsKernelsOFP8E5M2) { check_bits_kernels<OFP8E5M2>(); }
TEST(KernelSimd, BitsKernelsPosit8) { check_bits_kernels<Posit8>(); }
TEST(KernelSimd, BitsKernelsTakum8) { check_bits_kernels<Takum8>(); }

TEST(KernelSimd, DotBlockBitsMatchSingleDots) {
  MFLA_SKIP_WITHOUT_AVX2();
  using T = Posit8;
  const auto& lut = kernels::accel::Lut8<T>::instance();
  const std::uint8_t zero = ScalarCodec<T>::to_bits(T(0));
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{31}, std::size_t{32},
                              std::size_t{33}, std::size_t{257}, std::size_t{1000}}) {
    const std::size_t ldx = n + 3;
    const auto x = random_bytes(16 * ldx, 500 + n);
    const auto y = random_bytes(n, 600 + n);
    std::uint8_t want[16];
    for (std::size_t c = 0; c < 16; ++c)
      want[c] = kernels::simd::dot_bits(lut.mul_data(), lut.add_t_data(), x.data() + c * ldx,
                                        y.data(), n, zero);
    std::uint8_t got[16];
    kernels::simd::dot_block16_bits(lut.mul_data(), lut.add_t_data(), x.data(), ldx, y.data(),
                                    n, zero, got);
    for (std::size_t c = 0; c < 16; ++c) ASSERT_EQ(got[c], want[c]) << "16-wide c=" << c;
    for (const std::size_t kc : {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{8}}) {
      kernels::simd::dot_block8_bits(lut.mul_data(), lut.add_t_data(), x.data(), ldx, kc,
                                     y.data(), n, zero, got);
      for (std::size_t c = 0; c < kc; ++c)
        ASSERT_EQ(got[c], want[c]) << "8-wide kc=" << kc << " c=" << c;
    }
  }
}

#undef MFLA_SKIP_WITHOUT_AVX2

#endif  // MFLA_SIMD_COMPILED

// -- SELL-8 plan construction and the sliced SpMV kernel --------------------
// (Plain scalar code — no AVX2 host needed.)

TEST(KernelSimd, SellPlanRejectsWideAndSkewed) {
  // cols beyond 16 bits cannot live in the fused word.
  const std::uint32_t row_ptr1[] = {0, 1};
  const std::uint32_t col_idx1[] = {0};
  const std::uint16_t offsets1[] = {0};
  EXPECT_FALSE(kernels::build_sell_plan(1, 65537, row_ptr1, col_idx1, offsets1).valid);
  EXPECT_TRUE(kernels::build_sell_plan(1, 65536, row_ptr1, col_idx1, offsets1).valid);
  EXPECT_FALSE(kernels::build_sell_plan(0, 4, row_ptr1, col_idx1, offsets1).valid);

  // One 200-nonzero row among 15 empty ones: padding would store 16 * 200
  // words for 200 nonzeros, past the 4x + 64 blowup guard.
  std::vector<std::uint32_t> row_ptr(17, 200);
  row_ptr[0] = 0;
  std::vector<std::uint32_t> col_idx(200);
  std::vector<std::uint16_t> offsets(200);
  for (std::uint32_t i = 0; i < 200; ++i) col_idx[i] = i;
  EXPECT_FALSE(kernels::build_sell_plan(16, 256, row_ptr.data(), col_idx.data(), offsets.data())
                   .valid);
}

TEST(KernelSimd, SellPlanLayoutAndPadding) {
  // Ten rows (so two slices, the second partial) with lengths 2,0,3,1,...
  const std::uint32_t row_ptr[] = {0, 2, 2, 5, 6, 8, 10, 11, 13, 14, 16};
  const std::size_t rows = 10, nnz = 16;
  std::vector<std::uint32_t> col_idx(nnz);
  std::vector<std::uint16_t> offsets(nnz);
  for (std::size_t k = 0; k < nnz; ++k) {
    col_idx[k] = static_cast<std::uint32_t>(k % 7);
    offsets[k] = static_cast<std::uint16_t>((k * 37) << 8);
  }
  const kernels::SellPlan p =
      kernels::build_sell_plan(rows, 7, row_ptr, col_idx.data(), offsets.data());
  ASSERT_TRUE(p.valid);
  ASSERT_EQ(p.slices.size(), 2u);
  EXPECT_EQ(p.slices[0].maxl, 3u);  // longest of rows 0..7
  EXPECT_EQ(p.slices[0].len[1], 0u);
  EXPECT_EQ(p.slices[1].len[2], 0u);  // past the last row
  ASSERT_EQ(p.fused.size(), 8u * p.slices[0].maxl + 8u * p.slices[1].maxl);
  for (std::size_t si = 0; si < p.slices.size(); ++si) {
    const auto& s = p.slices[si];
    for (std::size_t c = 0; c < 8; ++c) {
      for (std::uint32_t t = 0; t < s.maxl; ++t) {
        const std::uint32_t word = p.fused[s.base + 8 * t + c];
        if (s.len[c] == 0) {
          EXPECT_EQ(word, 0u) << "empty row slice " << si << " lane " << c;
          continue;
        }
        // Pad entries replicate the row's last real nonzero.
        const std::uint32_t k =
            row_ptr[si * 8 + c] + (t < s.len[c] ? t : s.len[c] - 1);
        EXPECT_EQ(word, (static_cast<std::uint32_t>(offsets[k]) << 16) | col_idx[k])
            << "slice " << si << " lane " << c << " t=" << t;
      }
    }
  }
}

TEST(KernelSimd, SellPlanHeightGuardsAndMetadata) {
  const std::uint32_t row_ptr[] = {0, 1};
  const std::uint32_t col_idx[] = {0};
  const std::uint16_t offsets[] = {0};
  // Heights outside [1, kMaxHeight] cannot be laid out.
  EXPECT_FALSE(kernels::build_sell_plan(1, 4, row_ptr, col_idx, offsets, 0).valid);
  EXPECT_FALSE(kernels::build_sell_plan(1, 4, row_ptr, col_idx, offsets, 17).valid);
  for (const std::size_t h : {std::size_t{8}, std::size_t{16}}) {
    const kernels::SellPlan p = kernels::build_sell_plan(1, 4, row_ptr, col_idx, offsets, h);
    ASSERT_TRUE(p.valid) << "height " << h;
    EXPECT_EQ(p.height, h);
    EXPECT_EQ(p.cols, 4u);  // records the x length its col indices address
    EXPECT_EQ(p.slices.size(), 1u);
    EXPECT_EQ(p.fused.size(), h);  // one slice, maxl 1
  }
}

TEST(KernelSimd, Sell16PlanLayoutAndPadding) {
  // Twenty rows (two slices, the second partial) with irregular lengths.
  const std::size_t rows = 20, height = 16;
  std::vector<std::uint32_t> row_ptr(rows + 1, 0);
  std::vector<std::uint32_t> col_idx;
  std::vector<std::uint16_t> offsets;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t len = (r * 5 + 2) % 7;  // 2,0,5,3,1,6,4,...
    for (std::size_t t = 0; t < len; ++t) {
      col_idx.push_back(static_cast<std::uint32_t>((r + t) % 9));
      offsets.push_back(static_cast<std::uint16_t>(((r * 31 + t * 7) & 0xff) << 8));
    }
    row_ptr[r + 1] = static_cast<std::uint32_t>(col_idx.size());
  }
  const kernels::SellPlan p = kernels::build_sell_plan(rows, 9, row_ptr.data(), col_idx.data(),
                                                       offsets.data(), height);
  ASSERT_TRUE(p.valid);
  ASSERT_EQ(p.slices.size(), 2u);
  EXPECT_EQ(p.slices[1].len[rows - 16 - 1], row_ptr[rows] - row_ptr[rows - 1]);
  EXPECT_EQ(p.slices[1].len[rows - 16], 0u);  // past the last row
  std::size_t want_words = 0;
  for (const auto& s : p.slices) want_words += height * s.maxl;
  ASSERT_EQ(p.fused.size(), want_words);
  for (std::size_t si = 0; si < p.slices.size(); ++si) {
    const auto& s = p.slices[si];
    for (std::size_t c = 0; c < height; ++c) {
      const std::size_t r = si * height + c;
      ASSERT_EQ(s.len[c], r < rows ? row_ptr[r + 1] - row_ptr[r] : 0u) << "row " << r;
      for (std::uint32_t t = 0; t < s.maxl; ++t) {
        const std::uint32_t word = p.fused[s.base + height * t + c];
        if (s.len[c] == 0) {
          EXPECT_EQ(word, 0u) << "empty row slice " << si << " lane " << c;
          continue;
        }
        // Pad entries replicate the row's last real nonzero.
        const std::uint32_t k = row_ptr[r] + (t < s.len[c] ? t : s.len[c] - 1);
        EXPECT_EQ(word, (static_cast<std::uint32_t>(offsets[k]) << 16) | col_idx[k])
            << "slice " << si << " lane " << c << " t=" << t;
      }
    }
  }
}

TEST(KernelSimd, SellSpmvMatchesPlannedScalar) {
  using T = Takum8;
  using Codec = ScalarCodec<T>;
  const auto& lut = kernels::accel::Lut8<T>::instance();
  Rng rng("sell_spmv", 1);
  // Irregular matrix: row r has r % 5 nonzeros (some rows empty), 40 rows.
  const std::size_t rows = 40, cols = 23;
  std::vector<std::uint32_t> row_ptr(rows + 1, 0);
  std::vector<std::uint32_t> col_idx;
  std::vector<std::uint16_t> offsets;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t len = r % 5;
    for (std::size_t t = 0; t < len; ++t) {
      col_idx.push_back(static_cast<std::uint32_t>(rng.uniform_index(cols)));
      offsets.push_back(static_cast<std::uint16_t>((rng.next_u64() & 0xff) << 8));
    }
    row_ptr[r + 1] = static_cast<std::uint32_t>(col_idx.size());
  }
  const kernels::SellPlan plan =
      kernels::build_sell_plan(rows, cols, row_ptr.data(), col_idx.data(), offsets.data());
  ASSERT_TRUE(plan.valid);

  const auto xb = random_bytes(cols, 77);
  const std::uint8_t zero = Codec::to_bits(T(0));
  // Scalar planned recurrence, row at a time.
  std::vector<std::uint8_t> want(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t acc = zero;
    for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::uint8_t p = lut.mul_data()[offsets[k] | xb[col_idx[k]]];
      acc = lut.add_t_data()[(static_cast<std::size_t>(p) << 8) + acc];
    }
    want[r] = static_cast<std::uint8_t>(acc);
  }
  std::vector<std::uint8_t> got(rows, 0xee);
  kernels::spmv_sell_bits(lut.mul_data(), lut.add_t_data(), xb.data(), plan, rows, got.data(),
                          zero);
  for (std::size_t r = 0; r < rows; ++r) ASSERT_EQ(got[r], want[r]) << "row " << r;
}

// -- AVX-512 rung: the same ladder of checks at sixteen/sixty-four lanes ----

#if MFLA_SIMD_AVX512_COMPILED

#define MFLA_SKIP_WITHOUT_AVX512() \
  if (!kernels::simd_avx512_supported()) GTEST_SKIP() << "host does not execute AVX-512F/BW"
#define MFLA_SKIP_WITHOUT_VBMI() \
  if (!kernels::simd_vbmi_supported()) GTEST_SKIP() << "host does not execute AVX-512VBMI"

/// simd512::gather_pairs over all 65536 operand pairs of both tables.
template <typename T>
void check_gather_pairs16_exhaustive() {
  MFLA_SKIP_WITHOUT_AVX512();
  const auto& lut = kernels::accel::Lut8<T>::instance();
  std::vector<std::uint8_t> a(65536), b(65536), out(65536);
  for (std::size_t i = 0; i < 65536; ++i) {
    a[i] = static_cast<std::uint8_t>(i >> 8);
    b[i] = static_cast<std::uint8_t>(i & 0xff);
  }
  for (const std::uint8_t* table : {lut.add_data(), lut.mul_data()}) {
    kernels::simd512::gather_pairs(table, a.data(), b.data(), out.data(), out.size());
    for (std::size_t i = 0; i < 65536; ++i)
      ASSERT_EQ(out[i], table[i]) << NumTraits<T>::name() << " pair " << i;
  }
}

TEST(KernelSimd, GatherPairs16ExhaustiveOFP8E4M3) { check_gather_pairs16_exhaustive<OFP8E4M3>(); }
TEST(KernelSimd, GatherPairs16ExhaustiveOFP8E5M2) { check_gather_pairs16_exhaustive<OFP8E5M2>(); }
TEST(KernelSimd, GatherPairs16ExhaustivePosit8) { check_gather_pairs16_exhaustive<Posit8>(); }
TEST(KernelSimd, GatherPairs16ExhaustiveTakum8) { check_gather_pairs16_exhaustive<Takum8>(); }

TEST(KernelSimd, GatherPairs16TailsAndAliasing) {
  MFLA_SKIP_WITHOUT_AVX512();
  const auto& lut = kernels::accel::Lut8<Posit8>::instance();
  for (const std::size_t n : kLengths) {
    const auto a = random_bytes(n, 1300 + n);
    auto b = random_bytes(n, 1400 + n);
    std::vector<std::uint8_t> want(n);
    for (std::size_t i = 0; i < n; ++i)
      want[i] = lut.add_data()[(static_cast<std::size_t>(a[i]) << 8) | b[i]];
    // In-place on the second operand, as the axpy kernel uses it.
    kernels::simd512::gather_pairs(lut.add_data(), a.data(), b.data(), b.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(b[i], want[i]) << "n=" << n << " i=" << i;
  }
}

/// The vpermi2b in-register lookup against plain table indexing, for every
/// possible input byte (the blend on the index MSB is the part that would
/// break silently).
TEST(KernelSimd, Lookup256VpermExhaustive) {
  MFLA_SKIP_WITHOUT_VBMI();
  const auto& lut = kernels::accel::Lut8<Takum8>::instance();
  for (const std::uint8_t alpha : {std::uint8_t{0x00}, std::uint8_t{0x37}, std::uint8_t{0x80},
                                   std::uint8_t{0xff}}) {
    const std::uint8_t* row = lut.mul_row(alpha);
    std::vector<std::uint8_t> x(256), out(256);
    for (std::size_t i = 0; i < 256; ++i) x[i] = static_cast<std::uint8_t>(i);
    kernels::simd512::lookup256_map(row, x.data(), out.data(), 256);
    for (std::size_t i = 0; i < 256; ++i)
      ASSERT_EQ(out[i], row[i]) << "alpha=" << int(alpha) << " byte " << i;
  }
}

TEST(KernelSimd, Lookup256VpermTailsAndInPlace) {
  MFLA_SKIP_WITHOUT_VBMI();
  const auto& lut = kernels::accel::Lut8<Takum8>::instance();
  const std::uint8_t* row = lut.mul_row(0x37);
  for (const std::size_t n : kLengths) {
    std::vector<std::uint8_t> x(n), out(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<std::uint8_t>(i * 7 + 3);
    kernels::simd512::lookup256_map(row, x.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(out[i], row[x[i]]) << "n=" << n << " i=" << i;
    // In-place form (scal).
    kernels::simd512::lookup256_map(row, x.data(), x.data(), n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(x[i], out[i]) << "n=" << n << " i=" << i;
  }
}

TEST(KernelSimd, Transpose16x16Bytes) {
  MFLA_SKIP_WITHOUT_AVX512();
  const std::size_t ldx = 19;  // deliberately not 16: columns are strided
  std::vector<std::uint8_t> x(16 * ldx);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<std::uint8_t>(i * 13 + 5);
  std::uint8_t out[256];
  kernels::simd512::transpose16x16_bytes(x.data(), ldx, out);
  for (std::size_t e = 0; e < 16; ++e)
    for (std::size_t c = 0; c < 16; ++c)
      ASSERT_EQ(out[e * 16 + c], x[c * ldx + e]) << "e=" << e << " c=" << c;
}

template <typename T>
void check_bits_kernels16() {
  MFLA_SKIP_WITHOUT_AVX512();
  using Codec = ScalarCodec<T>;
  const auto& lut = kernels::accel::Lut8<T>::instance();
  const std::uint8_t zero = Codec::to_bits(T(0));
  const std::uint8_t* add = lut.add_data();
  const std::uint8_t* addt = lut.add_t_data();
  const std::uint8_t* mul = lut.mul_data();
  const bool vbmi = kernels::simd_vbmi_supported();
  for (const std::size_t n : kLengths) {
    const auto x = random_bytes(n, 1500 + n);
    const auto y = random_bytes(n, 1600 + n);

    // dot: the scalar chain acc := addt[(mul[(x<<8)|y] << 8) | acc].
    std::size_t acc = zero;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t p = mul[(static_cast<std::size_t>(x[i]) << 8) | y[i]];
      acc = addt[(static_cast<std::size_t>(p) << 8) + acc];
    }
    ASSERT_EQ(kernels::simd512::dot_bits(mul, addt, x.data(), y.data(), n, zero),
              static_cast<std::uint8_t>(acc))
        << NumTraits<T>::name() << " dot n=" << n;

    if (!vbmi) continue;  // the remaining kernels decode in-register

    // axpy with a fixed alpha row: y := add[(y << 8) | mul(alpha, x)].
    const std::uint8_t* row = lut.mul_row(0x5a);
    std::vector<std::uint8_t> got = y, want = y;
    for (std::size_t i = 0; i < n; ++i)
      want[i] = add[(static_cast<std::size_t>(want[i]) << 8) | row[x[i]]];
    kernels::simd512::axpy_bits(add, row, x.data(), got.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], want[i]) << NumTraits<T>::name() << " axpy n=" << n << " i=" << i;

    // scal through the *transposed* mul row — the dispatch layer's operand
    // order, x := mul(x, alpha).
    const std::uint8_t* trow = lut.mul_t_row(0x5a);
    got = x;
    kernels::simd512::scal_bits(trow, got.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(got[i], mul[(static_cast<std::size_t>(x[i]) << 8) | 0x5a])
          << NumTraits<T>::name() << " scal n=" << n << " i=" << i;
  }
}

TEST(KernelSimd, BitsKernels16OFP8E4M3) { check_bits_kernels16<OFP8E4M3>(); }
TEST(KernelSimd, BitsKernels16OFP8E5M2) { check_bits_kernels16<OFP8E5M2>(); }
TEST(KernelSimd, BitsKernels16Posit8) { check_bits_kernels16<Posit8>(); }
TEST(KernelSimd, BitsKernels16Takum8) { check_bits_kernels16<Takum8>(); }

TEST(KernelSimd, DotBlock16And32BitsMatchSingleDots) {
  MFLA_SKIP_WITHOUT_AVX512();
  using T = Posit8;
  const auto& lut = kernels::accel::Lut8<T>::instance();
  const std::uint8_t zero = ScalarCodec<T>::to_bits(T(0));
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{31}, std::size_t{32},
                              std::size_t{33}, std::size_t{257}, std::size_t{1000}}) {
    const std::size_t ldx = n + 3;
    const auto x = random_bytes(32 * ldx, 1700 + n);
    const auto y = random_bytes(n, 1800 + n);
    std::uint8_t want[32];
    for (std::size_t c = 0; c < 32; ++c)
      want[c] = kernels::simd512::dot_bits(lut.mul_data(), lut.add_t_data(), x.data() + c * ldx,
                                           y.data(), n, zero);
    std::uint8_t got[32];
    kernels::simd512::dot_block32_bits(lut.mul_data(), lut.add_t_data(), x.data(), ldx,
                                       y.data(), n, zero, got);
    for (std::size_t c = 0; c < 32; ++c) ASSERT_EQ(got[c], want[c]) << "32-wide c=" << c;
    for (const std::size_t kc : {std::size_t{1}, std::size_t{5}, std::size_t{15},
                                 std::size_t{16}}) {
      kernels::simd512::dot_block16_bits(lut.mul_data(), lut.add_t_data(), x.data(), ldx, kc,
                                         y.data(), n, zero, got);
      for (std::size_t c = 0; c < kc; ++c)
        ASSERT_EQ(got[c], want[c]) << "16-wide kc=" << kc << " c=" << c;
    }
  }
}

TEST(KernelSimd, Spmm16BitsMatchesScalarChunk) {
  MFLA_SKIP_WITHOUT_AVX512();
  using T = OFP8E4M3;
  const auto& lut = kernels::accel::Lut8<T>::instance();
  const std::uint8_t zero = ScalarCodec<T>::to_bits(T(0));
  Rng rng("spmm16", 3);
  // Irregular rows incl. empty ones and an odd row count (single-row tail).
  const std::size_t rows = 37, cols = 29, kc = 16, ldy = rows + 2;
  std::vector<std::uint32_t> row_ptr(rows + 1, 0);
  std::vector<std::uint32_t> col_idx;
  std::vector<std::uint16_t> offsets;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t len = (r * 3) % 6;
    for (std::size_t t = 0; t < len; ++t) {
      col_idx.push_back(static_cast<std::uint32_t>(rng.uniform_index(cols)));
      offsets.push_back(static_cast<std::uint16_t>((rng.next_u64() & 0xff) << 8));
    }
    row_ptr[r + 1] = static_cast<std::uint32_t>(col_idx.size());
  }
  const auto xb = random_bytes(cols * kc, 1900);  // interleaved xblk[col*16 + c]
  // Scalar reference: each lane chain in its own order.
  std::vector<std::uint8_t> want(kc * ldy, 0xcc), got(kc * ldy, 0xcc);
  for (std::size_t c = 0; c < kc; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      std::size_t acc = zero;
      for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const std::uint8_t p = lut.mul_data()[offsets[k] | xb[col_idx[k] * kc + c]];
        acc = lut.add_t_data()[(static_cast<std::size_t>(p) << 8) + acc];
      }
      want[c * ldy + r] = static_cast<std::uint8_t>(acc);
    }
  }
  kernels::simd512::spmm16_bits(lut.mul_data(), lut.add_t_data(), rows, row_ptr.data(),
                                col_idx.data(), offsets.data(), xb.data(), got.data(), ldy, kc,
                                zero);
  for (std::size_t c = 0; c < kc; ++c)
    for (std::size_t r = 0; r < rows; ++r)
      ASSERT_EQ(got[c * ldy + r], want[c * ldy + r]) << "c=" << c << " r=" << r;
}

TEST(KernelSimd, Sell16SpmvMatchesPlannedScalar) {
  MFLA_SKIP_WITHOUT_AVX512();
  using T = Takum8;
  using Codec = ScalarCodec<T>;
  const auto& lut = kernels::accel::Lut8<T>::instance();
  Rng rng("sell16_spmv", 1);
  // Odd slice count (3 slices: a pair + a remainder) with empty rows.
  const std::size_t rows = 41, cols = 23;
  std::vector<std::uint32_t> row_ptr(rows + 1, 0);
  std::vector<std::uint32_t> col_idx;
  std::vector<std::uint16_t> offsets;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t len = r % 5;
    for (std::size_t t = 0; t < len; ++t) {
      col_idx.push_back(static_cast<std::uint32_t>(rng.uniform_index(cols)));
      offsets.push_back(static_cast<std::uint16_t>((rng.next_u64() & 0xff) << 8));
    }
    row_ptr[r + 1] = static_cast<std::uint32_t>(col_idx.size());
  }
  const kernels::SellPlan plan = kernels::build_sell_plan(rows, cols, row_ptr.data(),
                                                          col_idx.data(), offsets.data(), 16);
  ASSERT_TRUE(plan.valid);
  ASSERT_EQ(plan.slices.size(), 3u);

  const auto xb = random_bytes(cols, 177);
  std::vector<std::uint8_t> xpad(cols + kernels::simd512::kGatherSlack, 0);
  std::memcpy(xpad.data(), xb.data(), cols);
  const std::uint8_t zero = Codec::to_bits(T(0));
  std::vector<std::uint8_t> want(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::size_t acc = zero;
    for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::uint8_t p = lut.mul_data()[offsets[k] | xb[col_idx[k]]];
      acc = lut.add_t_data()[(static_cast<std::size_t>(p) << 8) + acc];
    }
    want[r] = static_cast<std::uint8_t>(acc);
  }
  std::vector<std::uint8_t> got(rows, 0xee);
  kernels::simd512::spmv_sell16_bits(lut.mul_data(), lut.add_t_data(), xpad.data(), plan, rows,
                                     got.data(), zero);
  for (std::size_t r = 0; r < rows; ++r) ASSERT_EQ(got[r], want[r]) << "row " << r;
}

#undef MFLA_SKIP_WITHOUT_AVX512
#undef MFLA_SKIP_WITHOUT_VBMI

#endif  // MFLA_SIMD_AVX512_COMPILED

#endif  // MFLA_ENABLE_LUT

// -- Dispatch-level identity: every kernel, the ladder pinned per level -----
// Scalar is the anchor; every other level must match it bit for bit, which
// gives all pairwise identities (scalar == avx2 == avx512) by transitivity.

template <typename T>
CsrMatrix<T> test_matrix_irregular(std::size_t n, std::uint64_t salt) {
  // Laplacian of a random graph plus a few empty rows: rows whose vertex is
  // isolated have a single diagonal entry; to get genuinely empty rows we
  // build the COO by hand from the pipeline output minus some rows.
  Rng rng("simd_matrix", salt);
  const CooMatrix lap = graph_laplacian_pipeline(
      erdos_renyi(static_cast<std::uint32_t>(n), 6.0 / static_cast<double>(n), rng));
  CooMatrix pruned(lap.rows(), lap.cols());
  for (const auto& t : lap.triplets()) {
    if (t.row % 11 == 5) continue;  // empty rows every 11
    pruned.add(t.row, t.col, t.value);
  }
  return CsrMatrix<double>::from_coo(pruned).convert<T>();
}

template <typename T>
void check_dispatch_on_off() {
  using Codec = ScalarCodec<T>;
  const T alpha = NumTraits<T>::from_double(-0.31);
  for (const std::size_t n : kLengths) {
    // +3 so the unaligned slices below stay in bounds.
    const auto xv = from_bytes<T>(random_bytes(n + 3, 700 + n));
    const auto yv = from_bytes<T>(random_bytes(n + 3, 800 + n));
    for (const std::size_t shift : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      const T* x = xv.data() + shift;
      const T* y = yv.data() + shift;
      T dot_anchor{};
      std::vector<T> ax_anchor, sc_anchor;
      for (const kernels::SimdLevel level : kLevels) {
        LevelGuard guard(level);
        const T dot_here = kernels::dot(n, x, y);
        std::vector<T> ax(y, y + n), sc(x, x + n);
        kernels::axpy(n, alpha, x, ax.data());
        kernels::scal(n, alpha, sc.data());
        if (level == kernels::SimdLevel::scalar) {
          dot_anchor = dot_here;
          ax_anchor = ax;
          sc_anchor = sc;
          continue;
        }
        ASSERT_EQ(Codec::to_bits(dot_here), Codec::to_bits(dot_anchor))
            << NumTraits<T>::name() << " dot n=" << n << " shift=" << shift << " level="
            << level_name(level);
        expect_same_bits(ax, ax_anchor, level_name(level));
        expect_same_bits(sc, sc_anchor, level_name(level));
      }
    }
  }
}

TEST(KernelSimd, DispatchOnOffOFP8E4M3) { check_dispatch_on_off<OFP8E4M3>(); }
TEST(KernelSimd, DispatchOnOffOFP8E5M2) { check_dispatch_on_off<OFP8E5M2>(); }
TEST(KernelSimd, DispatchOnOffPosit8) { check_dispatch_on_off<Posit8>(); }
TEST(KernelSimd, DispatchOnOffTakum8) { check_dispatch_on_off<Takum8>(); }

template <typename T>
void check_spmv_on_off() {
  const auto a = test_matrix_irregular<T>(97, 1);
  const auto x = from_bytes<T>(random_bytes(a.cols(), 42));
  std::vector<T> y_anchor(a.rows()), y_noplan(a.rows());
  {
    LevelGuard guard(kernels::SimdLevel::scalar);
    a.matvec(x.data(), y_anchor.data());
  }
  for (const kernels::SimdLevel level : kLevels) {
    LevelGuard guard(level);
    std::vector<T> y(a.rows());
    a.matvec(x.data(), y.data());
    expect_same_bits(y, y_anchor, level_name(level));
  }
  // Generic (plan-less) kernel for the same product.
  kernels::spmv(a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data(), x.data(),
                y_noplan.data());
  expect_same_bits(y_anchor, y_noplan, "spmv planned/generic");
}

TEST(KernelSimd, SpmvOnOffOFP8E4M3) { check_spmv_on_off<OFP8E4M3>(); }
TEST(KernelSimd, SpmvOnOffOFP8E5M2) { check_spmv_on_off<OFP8E5M2>(); }
TEST(KernelSimd, SpmvOnOffPosit8) { check_spmv_on_off<Posit8>(); }
TEST(KernelSimd, SpmvOnOffTakum8) { check_spmv_on_off<Takum8>(); }

// -- Multi-vector primitives vs k single-vector calls -----------------------

template <typename T>
void check_blocked_vs_singles() {
  using Codec = ScalarCodec<T>;
  const std::size_t n = 203;
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4}, std::size_t{5},
        std::size_t{6}, std::size_t{7}, std::size_t{8}, std::size_t{9}, std::size_t{16},
        std::size_t{17}, std::size_t{24}, std::size_t{31}, std::size_t{32}, std::size_t{33},
        std::size_t{40}}) {
    const std::size_t ldx = n + 5;
    const auto xs = from_bytes<T>(random_bytes(k * ldx, 900 + k));
    const auto y = from_bytes<T>(random_bytes(n, 950 + k));
    const auto alphas = from_bytes<T>(random_bytes(k, 990 + k));
    for (const kernels::SimdLevel level : kLevels) {
      LevelGuard guard(level);
      // dot_block == k dots.
      std::vector<T> blocked(k), singles(k);
      kernels::dot_block(n, k, xs.data(), ldx, y.data(), blocked.data());
      for (std::size_t c = 0; c < k; ++c)
        singles[c] = kernels::dot(n, xs.data() + c * ldx, y.data());
      for (std::size_t c = 0; c < k; ++c)
        ASSERT_EQ(Codec::to_bits(blocked[c]), Codec::to_bits(singles[c]))
            << NumTraits<T>::name() << " dot_block k=" << k << " c=" << c
            << " level=" << level_name(level);
      // axpy_block == k sequential axpys.
      std::vector<T> yb(y), ys(y);
      kernels::axpy_block(n, k, alphas.data(), xs.data(), ldx, yb.data());
      for (std::size_t c = 0; c < k; ++c)
        kernels::axpy(n, alphas[c], xs.data() + c * ldx, ys.data());
      expect_same_bits(yb, ys, "axpy_block vs singles");
      // ref:: blocked forms against ref:: singles, for symmetry.
      kernels::ref::dot_block(n, k, xs.data(), ldx, y.data(), blocked.data());
      for (std::size_t c = 0; c < k; ++c)
        singles[c] = kernels::ref::dot(n, xs.data() + c * ldx, y.data());
      for (std::size_t c = 0; c < k; ++c)
        ASSERT_EQ(Codec::to_bits(blocked[c]), Codec::to_bits(singles[c]))
            << NumTraits<T>::name() << " ref::dot_block k=" << k << " c=" << c;
    }
  }
}

TEST(KernelSimd, BlockedVsSinglesOFP8E4M3) { check_blocked_vs_singles<OFP8E4M3>(); }
TEST(KernelSimd, BlockedVsSinglesPosit8) { check_blocked_vs_singles<Posit8>(); }
TEST(KernelSimd, BlockedVsSinglesTakum8) { check_blocked_vs_singles<Takum8>(); }
// A 16-bit format keeps the blocked primitives honest on the non-SIMD tier.
TEST(KernelSimd, BlockedVsSinglesFloat16) { check_blocked_vs_singles<Float16>(); }

template <typename T>
void check_spmm_vs_matvecs() {
  const auto a = test_matrix_irregular<T>(83, 2);
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{16}, std::size_t{17}, std::size_t{24}, std::size_t{33}}) {
    const std::size_t ldx = a.cols() + 2, ldy = a.rows() + 3;
    const auto x = from_bytes<T>(random_bytes(k * ldx, 1100 + k));
    for (const kernels::SimdLevel level : kLevels) {
      LevelGuard guard(level);
      std::vector<T> yb(k * ldy, T(0)), ys(k * ldy, T(0));
      a.matvec_block(x.data(), ldx, k, yb.data(), ldy);
      for (std::size_t c = 0; c < k; ++c)
        a.matvec(x.data() + c * ldx, ys.data() + c * ldy);
      for (std::size_t c = 0; c < k; ++c)
        for (std::size_t r = 0; r < a.rows(); ++r)
          ASSERT_EQ(ScalarCodec<T>::to_bits(yb[c * ldy + r]),
                    ScalarCodec<T>::to_bits(ys[c * ldy + r]))
              << NumTraits<T>::name() << " spmm k=" << k << " c=" << c << " r=" << r
              << " level=" << level_name(level);
    }
  }
}

TEST(KernelSimd, SpmmVsMatvecsOFP8E4M3) { check_spmm_vs_matvecs<OFP8E4M3>(); }
TEST(KernelSimd, SpmmVsMatvecsPosit8) { check_spmm_vs_matvecs<Posit8>(); }
TEST(KernelSimd, SpmmVsMatvecsTakum8) { check_spmm_vs_matvecs<Takum8>(); }
TEST(KernelSimd, SpmmVsMatvecsBFloat16) { check_spmm_vs_matvecs<BFloat16>(); }

// -- arnoldi_step_batch vs per-lane arnoldi_step ----------------------------

template <typename T>
void check_arnoldi_batch() {
  using Codec = ScalarCodec<T>;
  const auto a = test_matrix_irregular<T>(48, 3);
  const std::size_t n = a.rows(), steps = 5, lanes_n = 4, maxdim = steps + 1;

  // Two identically-seeded sets of expansions; one advances via the batch
  // call, the other one lane at a time.
  struct Lane {
    DenseMatrix<T> v, s;
    Rng rng;
    ArnoldiWorkspace<T> ws;
    Lane(std::size_t n_, std::size_t maxdim_, std::uint64_t seed)
        : v(n_, maxdim_ + 1), s(maxdim_ + 1, maxdim_), rng(seed) {
      ws.reserve(n_, maxdim_);
      Rng start(seed + 1000);
      const auto u = start.unit_vector(n_);
      for (std::size_t i = 0; i < n_; ++i) v(i, 0) = NumTraits<T>::from_double(u[i]);
    }
  };
  std::vector<Lane> batch, solo;
  for (std::size_t c = 0; c < lanes_n; ++c) {
    batch.emplace_back(n, maxdim, 10 + c);
    solo.emplace_back(n, maxdim, 10 + c);
  }
  std::vector<T> xblk, wblk;
  for (std::size_t j = 0; j < steps; ++j) {
    std::vector<ArnoldiBatchLane<T>> bl(lanes_n);
    for (std::size_t c = 0; c < lanes_n; ++c) {
      bl[c].v = &batch[c].v;
      bl[c].s = &batch[c].s;
      bl[c].j = j;
      bl[c].rng = &batch[c].rng;
      bl[c].ws = &batch[c].ws;
    }
    arnoldi_step_batch(a, bl.data(), lanes_n, xblk, wblk);
    for (std::size_t c = 0; c < lanes_n; ++c) {
      const ExpandStatus st = arnoldi_step(a, solo[c].v, solo[c].s, j, solo[c].rng, solo[c].ws);
      ASSERT_EQ(bl[c].status, st) << "lane " << c << " step " << j;
    }
  }
  for (std::size_t c = 0; c < lanes_n; ++c) {
    for (std::size_t col = 0; col <= steps; ++col)
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(Codec::to_bits(batch[c].v(i, col)), Codec::to_bits(solo[c].v(i, col)))
            << "lane " << c << " basis (" << i << ", " << col << ")";
    for (std::size_t col = 0; col < steps; ++col)
      for (std::size_t i = 0; i <= steps; ++i)
        ASSERT_EQ(Codec::to_bits(batch[c].s(i, col)), Codec::to_bits(solo[c].s(i, col)))
            << "lane " << c << " H (" << i << ", " << col << ")";
  }
}

TEST(KernelSimd, ArnoldiBatchMatchesSoloPosit8) { check_arnoldi_batch<Posit8>(); }
TEST(KernelSimd, ArnoldiBatchMatchesSoloOFP8E4M3) { check_arnoldi_batch<OFP8E4M3>(); }
TEST(KernelSimd, ArnoldiBatchMatchesSoloFloat16) { check_arnoldi_batch<Float16>(); }

// -- End to end: experiment CSVs byte-identical at every forced level -------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(KernelSimd, ExperimentCsvByteIdenticalAcrossLevels) {
  std::vector<TestMatrix> ds;
  Rng r1(7001), r2(7002);
  ds.push_back(make_test_matrix("simd_er", "social", "soc",
                                graph_laplacian_pipeline(erdos_renyi(40, 0.16, r1))));
  ds.push_back(make_test_matrix("simd_sbm", "social", "soc",
                                graph_laplacian_pipeline(stochastic_block(44, 2, 0.35, 0.07, r2))));
  const std::vector<FormatId> formats = {
      FormatId::ofp8_e4m3, FormatId::ofp8_e5m2, FormatId::posit8, FormatId::takum8,
      FormatId::float16,   FormatId::float64,
  };
  ExperimentConfig cfg;
  cfg.nev = 4;
  cfg.buffer = 2;
  cfg.max_restarts = 40;
  cfg.reference_max_restarts = 150;

  const auto run_to_csv = [&](kernels::SimdLevel level) {
    LevelGuard guard(level);
    const auto results = run_experiment(ds, formats, cfg, ScheduleOptions{});
    const std::string path = std::string("test_out/kernel_simd_") + level_name(level) + ".csv";
    write_results_csv(path, results);
    std::string data = slurp(path);
    std::remove(path.c_str());
    return data;
  };

  const std::string csv_scalar = run_to_csv(kernels::SimdLevel::scalar);
  EXPECT_FALSE(csv_scalar.empty());
  for (const kernels::SimdLevel level : {kernels::SimdLevel::avx2, kernels::SimdLevel::avx512}) {
    const std::string csv = run_to_csv(level);
    EXPECT_EQ(csv, csv_scalar) << level_name(level);
  }
}

}  // namespace
}  // namespace mfla
