// Minifloat (float16 / bfloat16 / OFP8) unit tests: exhaustive round-trips,
// spec-mandated constants, correct rounding against a double oracle, and
// special-value semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "arith/softfloat.hpp"
#include "arith/traits.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

// ---- Spec constants ---------------------------------------------------

TEST(Float16, KnownValues) {
  EXPECT_EQ(Float16(1.0).bits(), 0x3c00u);
  EXPECT_EQ(Float16(-2.0).bits(), 0xc000u);
  EXPECT_EQ(Float16(65504.0).bits(), 0x7bffu);  // max finite
  EXPECT_DOUBLE_EQ(Float16::max_finite().to_double(), 65504.0);
  EXPECT_DOUBLE_EQ(Float16::min_positive_normal().to_double(), 0x1p-14);
  EXPECT_DOUBLE_EQ(Float16::min_positive_subnormal().to_double(), 0x1p-24);
  EXPECT_DOUBLE_EQ(Float16::epsilon(), 0x1p-10);
}

TEST(BFloat16, KnownValues) {
  EXPECT_EQ(BFloat16(1.0).bits(), 0x3f80u);
  EXPECT_DOUBLE_EQ(BFloat16::max_finite().to_double(), 0x1.fep127);
  EXPECT_DOUBLE_EQ(BFloat16::epsilon(), 0x1p-7);
  // bfloat16 is float32 truncated: same dynamic range as float.
  EXPECT_GT(BFloat16::max_finite().to_double(), 3e38);
}

TEST(OFP8E4M3, SpecConstants) {
  // OCP OFP8 spec: E4M3 max finite = 448, min subnormal = 2^-9, NaN = S.1111.111.
  EXPECT_DOUBLE_EQ(OFP8E4M3::max_finite().to_double(), 448.0);
  EXPECT_DOUBLE_EQ(OFP8E4M3::min_positive_subnormal().to_double(), 0x1p-9);
  EXPECT_DOUBLE_EQ(OFP8E4M3::min_positive_normal().to_double(), 0x1p-6);
  EXPECT_TRUE(OFP8E4M3::from_bits(0x7f).is_nan());
  EXPECT_TRUE(OFP8E4M3::from_bits(0xff).is_nan());
  EXPECT_FALSE(OFP8E4M3::from_bits(0x7e).is_nan());  // 448, the max finite
  EXPECT_DOUBLE_EQ(OFP8E4M3::from_bits(0x7e).to_double(), 448.0);
  EXPECT_EQ(OFP8E4M3(1.0).bits(), 0x38u);
}

TEST(OFP8E5M2, SpecConstants) {
  // E5M2 is IEEE-like: max finite = 57344, infinities present.
  EXPECT_DOUBLE_EQ(OFP8E5M2::max_finite().to_double(), 57344.0);
  EXPECT_DOUBLE_EQ(OFP8E5M2::min_positive_subnormal().to_double(), 0x1p-16);
  EXPECT_TRUE(OFP8E5M2::infinity().is_inf());
  EXPECT_EQ(OFP8E5M2(1.0).bits(), 0x3cu);
}

// ---- Exhaustive round trips --------------------------------------------

template <typename T>
void exhaustive_roundtrip() {
  for (std::uint32_t b = 0; b < (1u << T::kBits); ++b) {
    const T x = T::from_bits(static_cast<typename T::Storage>(b));
    const double d = x.to_double();
    if (x.is_nan()) {
      EXPECT_TRUE(std::isnan(d));
      continue;
    }
    const T back = T::from_double(d);
    if (x.is_zero()) {
      EXPECT_TRUE(back.is_zero());
      continue;
    }
    EXPECT_EQ(back.bits(), x.bits()) << "bits=" << b << " d=" << d;
  }
}

TEST(SoftFloatRoundTrip, E4M3) { exhaustive_roundtrip<OFP8E4M3>(); }
TEST(SoftFloatRoundTrip, E5M2) { exhaustive_roundtrip<OFP8E5M2>(); }
TEST(SoftFloatRoundTrip, Float16) { exhaustive_roundtrip<Float16>(); }
TEST(SoftFloatRoundTrip, BFloat16) { exhaustive_roundtrip<BFloat16>(); }

// ---- Correct rounding oracle --------------------------------------------
// For M <= 10, rounding a double to the format must pick one of the two
// neighboring representable values, the nearer one (ties to even mantissa).

template <typename T>
void check_rounding(double x) {
  const T r = T::from_double(x);
  if (r.is_nan() || r.is_inf()) return;  // range handling checked elsewhere
  const double rd = r.to_double();
  // Scan all representable values for the true nearest (tie -> even).
  double best = std::numeric_limits<double>::infinity();
  double bestval = 0;
  bool best_even = false;
  for (std::uint32_t b = 0; b < (1u << T::kBits); ++b) {
    const T c = T::from_bits(static_cast<typename T::Storage>(b));
    if (c.is_nan() || c.is_inf()) continue;
    const double cd = c.to_double();
    const double d = std::abs(cd - x);
    const bool even = (b & 1u) == 0;
    if (d < best || (d == best && even && !best_even)) {
      best = d;
      bestval = cd;
      best_even = even;
    }
  }
  EXPECT_DOUBLE_EQ(rd, bestval) << "x=" << x;
}

TEST(SoftFloatRounding, E4M3RandomOracle) {
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    check_rounding<OFP8E4M3>(rng.normal() * rng.log_uniform(-3.0, 2.5));
  }
}

TEST(SoftFloatRounding, Float16RandomOracle) {
  Rng rng(12);
  for (int i = 0; i < 4000; ++i) {
    check_rounding<Float16>(rng.normal() * rng.log_uniform(-5.0, 4.5));
  }
}

TEST(SoftFloatRounding, TieToEven) {
  // 1 + eps/2 is exactly between 1 and 1+eps: must round to 1 (even).
  EXPECT_DOUBLE_EQ(Float16::from_double(1.0 + 0x1p-11).to_double(), 1.0);
  // 1 + 3*eps/2 is between 1+eps and 1+2eps: must round to 1+2eps (even).
  EXPECT_DOUBLE_EQ(Float16::from_double(1.0 + 3 * 0x1p-11).to_double(), 1.0 + 2 * 0x1p-10);
}

// ---- Exhaustive OFP8 arithmetic vs double oracle -------------------------

template <typename T, typename Op>
void exhaustive_binary_op(Op op, bool skip_div_zero) {
  for (std::uint32_t a = 0; a < 256; ++a) {
    const T xa = T::from_bits(static_cast<typename T::Storage>(a));
    if (xa.is_nan() || xa.is_inf()) continue;
    for (std::uint32_t b = 0; b < 256; ++b) {
      const T xb = T::from_bits(static_cast<typename T::Storage>(b));
      if (xb.is_nan() || xb.is_inf()) continue;
      if (skip_div_zero && xb.is_zero()) continue;
      const double exact = op(xa.to_double(), xb.to_double());
      const T got = op(xa, xb);
      const T want = T::from_double(exact);  // single rounding of the exact result
      if (want.is_nan()) {
        EXPECT_TRUE(got.is_nan()) << a << " op " << b;
      } else if (want.is_inf()) {
        EXPECT_TRUE(got.is_inf()) << a << " op " << b;
      } else {
        EXPECT_DOUBLE_EQ(got.to_double(), want.to_double()) << a << " op " << b;
      }
    }
  }
}

// The double computation of a*b, a+b, a/b for 8-bit operands is exact
// (or correctly rounded with innocuous double rounding), so from_double of
// it is the correctly rounded result.
TEST(OFP8Exhaustive, E4M3Add) {
  exhaustive_binary_op<OFP8E4M3>([](auto x, auto y) { return x + y; }, false);
}
TEST(OFP8Exhaustive, E4M3Mul) {
  exhaustive_binary_op<OFP8E4M3>([](auto x, auto y) { return x * y; }, false);
}
TEST(OFP8Exhaustive, E5M2Add) {
  exhaustive_binary_op<OFP8E5M2>([](auto x, auto y) { return x + y; }, false);
}
TEST(OFP8Exhaustive, E5M2Mul) {
  exhaustive_binary_op<OFP8E5M2>([](auto x, auto y) { return x * y; }, false);
}
TEST(OFP8Exhaustive, E5M2Div) {
  exhaustive_binary_op<OFP8E5M2>([](auto x, auto y) { return x / y; }, true);
}

// ---- Overflow / special semantics ----------------------------------------

TEST(SoftFloatSpecial, E4M3OverflowMakesNaN) {
  // Non-saturating OCP conversion: above max finite -> NaN, no infinity.
  EXPECT_TRUE(OFP8E4M3(1000.0).is_nan());
  EXPECT_TRUE((OFP8E4M3(448.0) + OFP8E4M3(448.0)).is_nan());
  EXPECT_FALSE(OFP8E4M3(448.0).is_nan());
  // Just above 448 but below the midpoint to the (nonexistent) next value.
  EXPECT_TRUE(OFP8E4M3(480.1).is_nan());
}

TEST(SoftFloatSpecial, E5M2OverflowMakesInf) {
  EXPECT_TRUE(OFP8E5M2(1e6).is_inf());
  EXPECT_TRUE((OFP8E5M2(57344.0) + OFP8E5M2(57344.0)).is_inf());
}

TEST(SoftFloatSpecial, UnderflowToZero) {
  EXPECT_TRUE(OFP8E4M3(1e-10).is_zero());
  EXPECT_TRUE(Float16(1e-30).is_zero());
  EXPECT_FALSE(Float16(0x1p-24).is_zero());  // min subnormal survives
}

TEST(SoftFloatSpecial, NanPropagation) {
  const Float16 nan = Float16::nan();
  EXPECT_TRUE((nan + Float16(1.0)).is_nan());
  EXPECT_TRUE((Float16(1.0) * nan).is_nan());
  EXPECT_TRUE(sqrt(Float16(-1.0)).is_nan());
  EXPECT_FALSE(nan == nan);  // IEEE semantics
  EXPECT_TRUE(nan != nan);
}

TEST(SoftFloatSpecial, SignedZeros) {
  EXPECT_TRUE(Float16(-0.0) == Float16(0.0));
  EXPECT_TRUE(Float16(-0.0).signbit());
  EXPECT_FALSE(Float16(0.0).signbit());
}

TEST(SoftFloatSpecial, DivisionByZero) {
  EXPECT_TRUE((OFP8E5M2(1.0) / OFP8E5M2(0.0)).is_inf());
  EXPECT_TRUE((Float16(-1.0) / Float16(0.0)).is_inf());
  EXPECT_TRUE((Float16(0.0) / Float16(0.0)).is_nan());
}

TEST(SoftFloatSpecial, SubnormalArithmetic) {
  const Float16 tiny = Float16::min_positive_subnormal();
  EXPECT_DOUBLE_EQ((tiny + tiny).to_double(), 2 * tiny.to_double());
  EXPECT_TRUE((tiny * tiny).is_zero());  // underflows
}

// ---- Comparisons -----------------------------------------------------------

TEST(SoftFloatCompare, TotalOrderOnFinite) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double a = rng.normal() * 10;
    const double b = rng.normal() * 10;
    const Float16 fa(a), fb(b);
    EXPECT_EQ(fa < fb, fa.to_double() < fb.to_double());
    EXPECT_EQ(fa == fb, fa.to_double() == fb.to_double());
  }
}

TEST(SoftFloatTraits, NamesAndTolerances) {
  EXPECT_EQ(NumTraits<Float16>::name(), "float16");
  EXPECT_EQ(NumTraits<BFloat16>::name(), "bfloat16");
  EXPECT_EQ(NumTraits<OFP8E4M3>::name(), "OFP8 E4M3");
  EXPECT_EQ(NumTraits<OFP8E5M2>::name(), "OFP8 E5M2");
  EXPECT_DOUBLE_EQ(NumTraits<OFP8E4M3>::default_tolerance(), 1e-2);
  EXPECT_DOUBLE_EQ(NumTraits<Float16>::default_tolerance(), 1e-4);
  EXPECT_DOUBLE_EQ(NumTraits<float>::default_tolerance(), 1e-8);
  EXPECT_DOUBLE_EQ(NumTraits<double>::default_tolerance(), 1e-12);
  EXPECT_DOUBLE_EQ(NumTraits<Quad>::default_tolerance(), 1e-20);
}

TEST(SoftFloatTraits, ConversionLossDetection) {
  EXPECT_TRUE(conversion_loses_value<OFP8E4M3>(1000.0));   // overflow -> NaN
  EXPECT_TRUE(conversion_loses_value<OFP8E4M3>(1e-12));    // underflow -> 0
  EXPECT_FALSE(conversion_loses_value<OFP8E4M3>(1.0));
  EXPECT_FALSE(conversion_loses_value<OFP8E4M3>(0.0));
  EXPECT_TRUE(conversion_loses_value<Float16>(1e9));
  EXPECT_FALSE(conversion_loses_value<BFloat16>(1e30));
}

}  // namespace
}  // namespace mfla
