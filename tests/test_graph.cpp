// Graph generator and Laplacian pipeline tests.
#include <gtest/gtest.h>

#include <cmath>

#include "dense/jacobi.hpp"
#include "dense/matrix.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

std::vector<double> dense_eigs(const CooMatrix& coo) {
  const auto a = CsrMatrix<double>::from_coo(coo);
  const std::size_t n = a.rows();
  DenseMatrix<double> d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d(i, j) = a.at(i, j);
  DenseMatrix<double> v;
  EXPECT_GT(jacobi_eigen(d, v, 60), 0);
  std::vector<double> e(n);
  for (std::size_t i = 0; i < n; ++i) e[i] = d(i, i);
  std::sort(e.begin(), e.end());
  return e;
}

// ---- Generators -------------------------------------------------------------

TEST(Generators, StarDegrees) {
  const CooMatrix s = star(10);
  const auto deg = vertex_degrees(s);
  EXPECT_DOUBLE_EQ(deg[0], 9.0);
  for (std::size_t i = 1; i < 10; ++i) EXPECT_DOUBLE_EQ(deg[i], 1.0);
  EXPECT_TRUE(s.is_symmetric());
}

TEST(Generators, CompleteGraph) {
  const CooMatrix k = complete(6);
  EXPECT_EQ(k.nnz(), 30u);  // 6*5 directed entries
  for (const double d : vertex_degrees(k)) EXPECT_DOUBLE_EQ(d, 5.0);
}

TEST(Generators, CompleteBipartite) {
  const CooMatrix k = complete_bipartite(3, 4);
  EXPECT_EQ(k.rows(), 7u);
  const auto deg = vertex_degrees(k);
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(deg[static_cast<std::size_t>(i)], 4.0);
  for (int i = 3; i < 7; ++i) EXPECT_DOUBLE_EQ(deg[static_cast<std::size_t>(i)], 3.0);
}

TEST(Generators, PathAndTree) {
  const auto p = path(5);
  EXPECT_EQ(p.nnz(), 8u);  // 4 undirected edges
  const auto t = binary_tree(7);
  EXPECT_EQ(t.nnz(), 12u);  // 6 edges
  EXPECT_TRUE(t.is_symmetric());
}

TEST(Generators, ErdosRenyiDensity) {
  Rng rng(61);
  const CooMatrix g = erdos_renyi(200, 0.1, rng);
  const double expected = 0.1 * 200 * 199;  // directed entries
  EXPECT_NEAR(static_cast<double>(g.nnz()), expected, 0.25 * expected);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Generators, BarabasiAlbertHubs) {
  Rng rng(62);
  const CooMatrix g = barabasi_albert(300, 2, rng);
  const auto deg = vertex_degrees(g);
  double dmax = 0, dsum = 0;
  for (const double d : deg) {
    dmax = std::max(dmax, d);
    dsum += d;
  }
  EXPECT_GT(dmax, 4 * dsum / static_cast<double>(deg.size()));  // heavy tail
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Generators, WattsStrogatzConnectedRing) {
  Rng rng(63);
  const CooMatrix g = watts_strogatz(100, 2, 0.0, rng);
  // beta = 0: pure ring lattice, every degree = 4.
  for (const double d : vertex_degrees(g)) EXPECT_DOUBLE_EQ(d, 4.0);
}

TEST(Generators, DuplicationDivergenceGrows) {
  Rng rng(64);
  const CooMatrix g = duplication_divergence(150, 0.4, rng);
  EXPECT_EQ(g.rows(), 150u);
  EXPECT_TRUE(g.is_symmetric());
  for (const double d : vertex_degrees(g)) EXPECT_GE(d, 1.0);  // no isolated vertices
}

TEST(Generators, Grid2D) {
  Rng rng(65);
  const CooMatrix g = grid_2d(5, 7, 0.0, rng);
  EXPECT_EQ(g.rows(), 35u);
  // Interior degree 4, corners 2.
  const auto deg = vertex_degrees(g);
  EXPECT_DOUBLE_EQ(deg[0], 2.0);
  EXPECT_DOUBLE_EQ(deg[1 * 7 + 3], 4.0);
}

TEST(Generators, RingOfCliques) {
  const CooMatrix g = ring_of_cliques(4, 5);
  EXPECT_EQ(g.rows(), 20u);
  EXPECT_TRUE(g.is_symmetric());
  // Each clique contributes 5*4 directed entries + ring edges.
  EXPECT_EQ(g.nnz(), 4u * 20u + 8u);
}

TEST(Generators, StochasticBlockCommunities) {
  Rng rng(66);
  const CooMatrix g = stochastic_block(200, 2, 0.3, 0.01, rng);
  // Count within- vs cross-community entries.
  std::size_t within = 0, cross = 0;
  for (const auto& t : g.triplets()) {
    if (t.row % 2 == t.col % 2) {
      ++within;
    } else {
      ++cross;
    }
  }
  EXPECT_GT(within, 5 * cross);
}

TEST(Generators, DisjointUnionBlocks) {
  const CooMatrix u = disjoint_union(complete(3), star(4));
  EXPECT_EQ(u.rows(), 7u);
  EXPECT_EQ(u.nnz(), complete(3).nnz() + star(4).nnz());
  // No cross-block entries.
  for (const auto& t : u.triplets()) {
    EXPECT_EQ(t.row < 3, t.col < 3);
  }
}

TEST(Generators, AddHubsRaisesMaxDegree) {
  Rng rng(67);
  const CooMatrix base = path(50);
  const CooMatrix g = add_hubs(base, 2, 30, rng);
  EXPECT_EQ(g.rows(), 52u);
  const auto deg = vertex_degrees(g);
  EXPECT_GE(deg[50], 20.0);  // hub degree (minus duplicate draws)
}

// ---- Pipeline stages ------------------------------------------------------------

TEST(Laplacian, SquarifyCropsRemovableZeroBlock) {
  CooMatrix a(5, 3);
  a.add(0, 1, 1.0);
  a.add(2, 2, 2.0);  // all entries within the 3x3 block
  const CooMatrix s = squarify(a);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_EQ(s.cols(), 3u);
}

TEST(Laplacian, SquarifyPadsWhenNotCroppable) {
  CooMatrix a(5, 3);
  a.add(4, 1, 1.0);  // row 4 is outside the 3x3 block
  const CooMatrix s = squarify(a);
  EXPECT_EQ(s.rows(), 5u);
  EXPECT_EQ(s.cols(), 5u);
}

TEST(Laplacian, AverageSymmetrization) {
  CooMatrix a(2, 2);
  a.add(0, 1, 4.0);
  const CooMatrix s = symmetrize_average(a);
  const auto m = CsrMatrix<double>::from_coo(s);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 2.0);
  EXPECT_TRUE(s.is_symmetric());
}

TEST(Laplacian, NormalizedLaplacianStructure) {
  // Paper Eq. (1): unit diagonal for non-isolated vertices,
  // off-diagonal -A_ij/sqrt(deg_i deg_j).
  const CooMatrix adj = star(5);
  const CooMatrix l = normalized_laplacian(adj);
  const auto m = CsrMatrix<double>::from_coo(l);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(m.at(i, i), 1.0);
  // Hub degree 4, leaf degree 1: off-diagonal = -1/2.
  EXPECT_DOUBLE_EQ(m.at(0, 1), -0.5);
  EXPECT_DOUBLE_EQ(m.at(1, 0), -0.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
}

TEST(Laplacian, IsolatedVertexRowStaysZero) {
  CooMatrix adj(3, 3);
  adj.add(0, 1, 1.0);
  adj.add(1, 0, 1.0);  // vertex 2 isolated
  const CooMatrix l = normalized_laplacian(adj);
  const auto m = CsrMatrix<double>::from_coo(l);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
}

TEST(Laplacian, SpectrumInZeroTwo) {
  // Normalized Laplacian eigenvalues always lie in [0, 2].
  Rng rng(68);
  for (int trial = 0; trial < 4; ++trial) {
    const CooMatrix adj = erdos_renyi(40, 0.15, rng);
    const auto e = dense_eigs(normalized_laplacian(adj));
    EXPECT_GE(e.front(), -1e-10);
    EXPECT_LE(e.back(), 2.0 + 1e-10);
    // Connected-ish graph: smallest eigenvalue ~ 0.
    EXPECT_NEAR(e.front(), 0.0, 1e-9);
  }
}

TEST(Laplacian, CompleteGraphKnownSpectrum) {
  // K_n normalized Laplacian: eigenvalue 0 (once) and n/(n-1) (n-1 times).
  const auto e = dense_eigs(normalized_laplacian(complete(8)));
  EXPECT_NEAR(e[0], 0.0, 1e-12);
  for (std::size_t i = 1; i < e.size(); ++i) EXPECT_NEAR(e[i], 8.0 / 7.0, 1e-12);
}

TEST(Laplacian, CompleteBipartiteSpectrum) {
  // K_{a,b} normalized Laplacian eigenvalues: 0, 1 (a+b-2 times), 2.
  const auto e = dense_eigs(normalized_laplacian(complete_bipartite(4, 5)));
  EXPECT_NEAR(e.front(), 0.0, 1e-12);
  EXPECT_NEAR(e.back(), 2.0, 1e-12);
  for (std::size_t i = 1; i + 1 < e.size(); ++i) EXPECT_NEAR(e[i], 1.0, 1e-12);
}

TEST(Laplacian, PipelineHandlesDirectedWeighted) {
  CooMatrix raw(3, 3);
  raw.add(0, 1, 2.0);  // directed weighted edge
  raw.add(1, 2, 4.0);
  const CooMatrix l = graph_laplacian_pipeline(raw);
  EXPECT_TRUE(l.is_symmetric(1e-15));
  const auto e = dense_eigs(l);
  EXPECT_GE(e.front(), -1e-12);
  EXPECT_LE(e.back(), 2.0 + 1e-12);
}

TEST(Laplacian, SelfLoopsOnlyAffectDegrees) {
  CooMatrix adj(2, 2);
  adj.add(0, 0, 3.0);  // self loop
  adj.add(0, 1, 1.0);
  adj.add(1, 0, 1.0);
  const CooMatrix l = normalized_laplacian(adj);
  const auto m = CsrMatrix<double>::from_coo(l);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);  // still unit diagonal
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0 / std::sqrt(4.0 * 1.0));
}

}  // namespace
}  // namespace mfla
