// Takum arithmetic tests: layout per the takum paper (linear takums),
// characteristic coverage, truncation, round trips, ordering, saturation.
#include <gtest/gtest.h>

#include <cmath>

#include "arith/takum.hpp"
#include "arith/traits.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

// ---- Layout / known values ---------------------------------------------------

TEST(TakumEncoding, One) {
  // 1.0: S=0, D=1, regime=000 (c = 0), no characteristic bits, mantissa 0.
  EXPECT_EQ(Takum16(1.0).bits(), 0x4000u);
  EXPECT_EQ(Takum32(1.0).bits(), 0x40000000u);
  EXPECT_EQ(Takum64(1.0).bits(), 0x4000000000000000ull);
  EXPECT_EQ(Takum8(1.0).bits(), 0x40u);
}

TEST(TakumEncoding, PowersOfTwo) {
  // 2.0: c = 1 -> D=1, rho=001, C field "0" (1 bit), mantissa 0.
  // bits: 0 1 001 0 ... = 0x48.. for takum16.
  EXPECT_EQ(Takum16(2.0).bits(), 0x4800u);
  EXPECT_DOUBLE_EQ(Takum16(2.0).to_double(), 2.0);
  EXPECT_DOUBLE_EQ(Takum16(4.0).to_double(), 4.0);
  EXPECT_DOUBLE_EQ(Takum16(0.5).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Takum16(1024.0).to_double(), 1024.0);
}

TEST(TakumEncoding, NaRAndZero) {
  EXPECT_EQ(Takum16::nar().bits(), 0x8000u);
  EXPECT_TRUE(Takum16::nar().is_nar());
  EXPECT_TRUE(Takum16(0.0).is_zero());
  EXPECT_TRUE(Takum16(NAN).is_nar());
  EXPECT_TRUE(Takum16(INFINITY).is_nar());
}

TEST(TakumEncoding, DynamicRange) {
  // takum8: 3 bits after S,D,RRR; max c = 127 + 0b111 << 4 = 239.
  EXPECT_DOUBLE_EQ(Takum8::max_positive().to_double(), 0x1p239);
  EXPECT_DOUBLE_EQ(Takum8::min_positive().to_double(), 0x1p-239);
  // takum16+: full characteristic available -> c in [-255, 254] and
  // maxpos has a near-full mantissa.
  EXPECT_GT(Takum16::max_positive().to_double(), 0x1p254);
  EXPECT_LT(Takum16::min_positive().to_double(), 0x1p-254);
}

TEST(TakumEncoding, CharacteristicFullCoverage) {
  // Every characteristic c in [-254, 254] must round-trip at 64 bits.
  for (int c = -254; c <= 254; ++c) {
    const auto enc = TakumCodec<64>::encode_positive(c, 1ull << 63, false, false);
    const Unpacked u = TakumCodec<64>::decode_positive(enc);
    EXPECT_EQ(u.e, c);
    EXPECT_EQ(u.m, 1ull << 63);
  }
  // c = -255 with mantissa exactly 1.0 would be the all-zero pattern
  // (= special zero); saturation clamps it to minpos (encoding 1) instead.
  EXPECT_EQ(TakumCodec<64>::encode_positive(-255, 1ull << 63, false, false), 1ull);
  const Unpacked minpos = TakumCodec<64>::decode_positive(1);
  EXPECT_EQ(minpos.e, -255);
}

TEST(TakumEncoding, MantissaWidthAtOne) {
  // At c = 0 a takum-n has n-5 mantissa bits: 1 + 2^-(n-5) must be the
  // next value above 1.
  const double next16 = Takum16::from_bits(Takum16(1.0).bits() + 1).to_double();
  EXPECT_DOUBLE_EQ(next16 - 1.0, 0x1p-11);
  const double next32 = static_cast<double>(Takum32::from_bits(Takum32(1.0).bits() + 1).to_double());
  EXPECT_DOUBLE_EQ(next32 - 1.0, 0x1p-27);
}

// ---- Round trips ----------------------------------------------------------------

template <class P>
void exhaustive_roundtrip() {
  for (std::uint64_t b = 0; b < (1ull << P::kBits); ++b) {
    const P x = P::from_bits(static_cast<typename P::Storage>(b));
    if (x.is_nar()) continue;
    EXPECT_EQ(P::from_double(x.to_double()).bits(), x.bits()) << "bits=" << b;
  }
}

TEST(TakumRoundTrip, Takum8Exhaustive) { exhaustive_roundtrip<Takum8>(); }
TEST(TakumRoundTrip, Takum16Exhaustive) { exhaustive_roundtrip<Takum16>(); }

TEST(TakumRoundTrip, Takum32Sampled) {
  Rng rng(31);
  for (int i = 0; i < 300000; ++i) {
    const auto b = static_cast<std::uint32_t>(rng.next_u64());
    const Takum32 x = Takum32::from_bits(b);
    if (x.is_nar()) continue;
    EXPECT_EQ(Takum32::from_double(x.to_double()).bits(), x.bits());
  }
}

TEST(TakumRoundTrip, Takum64UnpackRepack) {
  Rng rng(32);
  for (int i = 0; i < 300000; ++i) {
    const std::uint64_t b = rng.next_u64() & 0x7fffffffffffffffull;
    if (b == 0) continue;
    const Unpacked u = TakumCodec<64>::decode_positive(b);
    EXPECT_EQ(TakumCodec<64>::encode_positive(u.e, u.m, false, false), b);
  }
}

// ---- Ordering / negation ----------------------------------------------------------

TEST(TakumOrder, MonotoneEncoding) {
  Rng rng(33);
  for (int i = 0; i < 100000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng.next_u64());
    const auto b = static_cast<std::uint16_t>(rng.next_u64());
    const Takum16 pa = Takum16::from_bits(a), pb = Takum16::from_bits(b);
    if (pa.is_nar() || pb.is_nar()) continue;
    EXPECT_EQ(pa < pb, pa.to_double() < pb.to_double());
  }
}

TEST(TakumNegate, TwosComplement) {
  Rng rng(34);
  for (int i = 0; i < 100000; ++i) {
    const auto b = static_cast<std::uint16_t>(rng.next_u64());
    const Takum16 p = Takum16::from_bits(b);
    if (p.is_nar()) continue;
    EXPECT_DOUBLE_EQ((-p).to_double(), -p.to_double());
    EXPECT_EQ((-(-p)).bits(), p.bits());
  }
}

// ---- Saturation --------------------------------------------------------------------

TEST(TakumSaturation, NoOverflowToNaR) {
  const Takum8 big = Takum8::max_positive();
  EXPECT_EQ((big * big).bits(), Takum8::max_positive().bits());
  const Takum8 tiny = Takum8::min_positive();
  EXPECT_EQ((tiny * tiny).bits(), Takum8::min_positive().bits());
  EXPECT_FALSE(conversion_loses_value<Takum8>(1e300));
  EXPECT_FALSE(conversion_loses_value<Takum8>(1e-300));
}

TEST(TakumSaturation, CharacteristicClamp) {
  EXPECT_EQ(Takum16(1e300).bits(), Takum16::max_positive().bits());
  EXPECT_EQ(Takum16(1e-300).bits(), Takum16::min_positive().bits());
}

// ---- Arithmetic correctness (vs exactly representable cases) ------------------------

TEST(TakumArith, ExactCases) {
  EXPECT_DOUBLE_EQ((Takum16(1.5) + Takum16(2.25)).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((Takum16(1.5) * Takum16(2.0)).to_double(), 3.0);
  EXPECT_DOUBLE_EQ((Takum16(3.0) / Takum16(2.0)).to_double(), 1.5);
  EXPECT_DOUBLE_EQ(sqrt(Takum16(4.0)).to_double(), 2.0);
  EXPECT_DOUBLE_EQ(sqrt(Takum16(2.25)).to_double(), 1.5);
  EXPECT_DOUBLE_EQ((Takum16(1.0) - Takum16(1.0)).to_double(), 0.0);
}

TEST(TakumArith, HugeRangeProducts) {
  // 2^100 * 2^100 = 2^200: representable in every takum width >= 16.
  const Takum16 a = Takum16::from_double(0x1p100);
  EXPECT_DOUBLE_EQ((a * a).to_double(), 0x1p200);
  const Takum16 b = Takum16::from_double(0x1p-100);
  EXPECT_DOUBLE_EQ((b * b).to_double(), 0x1p-200);
  EXPECT_DOUBLE_EQ((a * b).to_double(), 1.0);
}

TEST(TakumArith, NaRPropagation) {
  EXPECT_TRUE((Takum16::nar() + Takum16(1.0)).is_nar());
  EXPECT_TRUE((Takum16(1.0) / Takum16(0.0)).is_nar());
  EXPECT_TRUE(sqrt(Takum16(-1.0)).is_nar());
}

TEST(TakumArith, CorrectRoundingNeighborBound) {
  // Result of any op must be within half of the wider neighbor gap.
  Rng rng(35);
  for (int i = 0; i < 200000; ++i) {
    const double a = rng.normal() * rng.log_uniform(-3.0, 3.0);
    const double b = rng.normal() * rng.log_uniform(-3.0, 3.0);
    const Takum16 pa(a), pb(b);
    const long double xa = pa.to_double(), xb = pb.to_double();
    const struct {
      long double exact;
      Takum16 got;
    } cases[] = {{xa + xb, pa + pb}, {xa * xb, pa * pb}, {xb != 0 ? xa / xb : 0, pa / pb}};
    for (const auto& c : cases) {
      if (c.exact == 0 || c.got.is_nar()) continue;
      const double g = c.got.to_double();
      const Takum16 up = Takum16::from_bits(static_cast<std::uint16_t>(c.got.bits() + 1));
      const Takum16 dn = Takum16::from_bits(static_cast<std::uint16_t>(c.got.bits() - 1));
      if (up.is_nar() || dn.is_nar()) continue;
      const long double gap =
          std::max<long double>(std::abs(up.to_double() - g), std::abs(g - dn.to_double()));
      EXPECT_LE(std::abs(static_cast<double>(c.exact - static_cast<long double>(g))),
                static_cast<double>(gap) * 0.5000001);
    }
  }
}

TEST(TakumVsPosit, PrecisionProfile) {
  // Takums keep more fraction bits than posits away from 1 (flat taper):
  // at 2^40, takum32 has 32-5-6=21 fraction bits, posit32 has 32-3-2-11=17.
  // Check via neighbor gaps.
  const double x = 0x1.123456789p40;
  const Takum32 t(x);
  const auto tgap = std::abs(Takum32::from_bits(t.bits() + 1).to_double() - t.to_double());
  EXPECT_LT(tgap / x, 0x1p-20);
  EXPECT_GT(tgap / x, 0x1p-23);
}

}  // namespace
}  // namespace mfla
