// Robustness / failure-injection tests: degenerate inputs, poisoned
// values, overflow paths — the library must fail gracefully (reported
// outcome, no crash, no silent garbage) in every case. Exercises the
// legacy run_matrix path deliberately.
#define MFLA_ALLOW_DEPRECATED
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "core/lanczos.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "sparse/csr.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

CsrMatrix<double> from_entries(std::size_t n,
                               const std::vector<std::tuple<std::uint32_t, std::uint32_t, double>>& es) {
  CooMatrix coo(n, n);
  for (const auto& [i, j, v] : es) coo.add(i, j, v);
  return CsrMatrix<double>::from_coo(coo);
}

TEST(Robustness, ZeroMatrixConverges) {
  const CsrMatrix<double> a = from_entries(24, {});
  PartialSchurOptions opts;
  opts.nev = 4;
  opts.tolerance = 1e-10;
  const auto r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(r.eig_re[i], 0.0);
}

TEST(Robustness, IdentityMatrixFullMultiplicity) {
  std::vector<std::tuple<std::uint32_t, std::uint32_t, double>> es;
  for (std::uint32_t i = 0; i < 30; ++i) es.emplace_back(i, i, 1.0);
  const auto a = from_entries(30, es);
  PartialSchurOptions opts;
  opts.nev = 5;
  opts.tolerance = 1e-10;
  opts.max_restarts = 100;
  const auto r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(r.eig_re[i], 1.0, 1e-10);
}

TEST(Robustness, NanEntryFailsGracefully) {
  const auto a = from_entries(20, {{0, 0, 1.0}, {3, 4, std::nan("")}, {4, 3, std::nan("")}});
  PartialSchurOptions opts;
  opts.nev = 3;
  const auto r = partialschur<double>(a, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.failure.empty());
}

TEST(Robustness, MixedSignSpectrumLargestMagnitude) {
  std::vector<std::tuple<std::uint32_t, std::uint32_t, double>> es;
  for (std::uint32_t i = 0; i < 20; ++i) {
    es.emplace_back(i, i, (i % 2 == 0 ? 1.0 : -1.0) * static_cast<double>(i + 1));
  }
  const auto a = from_entries(20, es);
  PartialSchurOptions opts;
  opts.nev = 4;
  opts.tolerance = 1e-11;
  const auto r = partialschur<double>(a, opts);
  ASSERT_TRUE(r.converged) << r.failure;
  // Largest magnitudes: -20, 19, -18, 17.
  EXPECT_NEAR(std::abs(r.eig_re[0]), 20.0, 1e-9);
  EXPECT_NEAR(std::abs(r.eig_re[1]), 19.0, 1e-9);
  EXPECT_NEAR(std::abs(r.eig_re[2]), 18.0, 1e-9);
}

TEST(Robustness, Float16MatvecOverflowClassifiedOmega) {
  // Entries representable in float16 but row sums overflow during matvec:
  // conversion passes the ∞σ check, the run itself dies -> ∞ω. Entries are
  // varied so the spectrum is non-degenerate (the reference must converge).
  Rng rng(1301);
  std::vector<std::tuple<std::uint32_t, std::uint32_t, double>> es;
  for (std::uint32_t i = 0; i < 24; ++i) {
    for (std::uint32_t j = i + 1; j < 24; ++j) {
      const double v = rng.uniform(20000.0, 40000.0);  // < 65504 (fp16 max)
      es.emplace_back(i, j, v);
      es.emplace_back(j, i, v);
    }
    es.emplace_back(i, i, rng.uniform(30000.0, 50000.0));
  }
  const auto a = from_entries(24, es);
  TestMatrix tm;
  tm.name = "overflow16";
  tm.klass = "general";
  tm.category = "stress";
  tm.matrix = a;
  ExperimentConfig cfg;
  cfg.max_restarts = 30;
  const auto res = run_matrix(tm, {FormatId::float16, FormatId::takum16}, cfg);
  ASSERT_TRUE(res.reference_ok) << res.reference_failure;
  EXPECT_EQ(res.runs[0].outcome, RunOutcome::no_convergence);  // fp16 overflow -> NaN
  // takum16 saturates instead of overflowing: it may converge or not, but
  // must never report a range failure.
  EXPECT_NE(res.runs[1].outcome, RunOutcome::range_exceeded);
}

TEST(Robustness, TinyMatrixReferencePath) {
  // n too small for nev + buffer: the solver reports failure, run_matrix
  // surfaces it as a reference failure, nothing crashes.
  const auto a = from_entries(6, {{0, 0, 2.0}, {1, 1, 1.0}, {2, 2, 3.0}});
  TestMatrix tm;
  tm.name = "tiny";
  tm.klass = "general";
  tm.category = "stress";
  tm.matrix = a;
  ExperimentConfig cfg;  // nev 10 + buffer 2 > n
  const auto res = run_matrix(tm, {FormatId::float64}, cfg);
  EXPECT_FALSE(res.reference_ok);
  EXPECT_FALSE(res.reference_failure.empty());
}

TEST(Robustness, LanczosZeroAndNanInputs) {
  const CsrMatrix<double> zero = from_entries(20, {});
  PartialSchurOptions opts;
  opts.nev = 3;
  const auto rz = lanczos_eigs<double>(zero, opts);
  EXPECT_TRUE(rz.converged) << rz.failure;
  const auto bad = from_entries(20, {{2, 2, std::numeric_limits<double>::infinity()}});
  const auto rb = lanczos_eigs<double>(bad, opts);
  EXPECT_FALSE(rb.converged);
}

TEST(Robustness, EmptyGraphPipeline) {
  CooMatrix empty(0, 0);
  const CooMatrix lap = graph_laplacian_pipeline(empty);
  EXPECT_EQ(lap.rows(), 0u);
  EXPECT_EQ(lap.nnz(), 0u);
}

TEST(Robustness, IsolatedVerticesOnlyGraph) {
  CooMatrix adj(10, 10);  // no edges at all
  const CooMatrix lap = normalized_laplacian(adj);
  EXPECT_EQ(lap.nnz(), 0u);
}

TEST(Robustness, CsrEmptyMatvec) {
  const CsrMatrix<double> a = from_entries(5, {});
  const double x[5] = {1, 2, 3, 4, 5};
  double y[5] = {9, 9, 9, 9, 9};
  a.matvec(x, y);
  for (const double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Robustness, OFP8DivisionSemantics) {
  // E4M3 has no infinity: x/0 must produce NaN. E5M2 is IEEE-like: inf.
  EXPECT_TRUE((OFP8E4M3(1.0) / OFP8E4M3(0.0)).is_nan());
  EXPECT_TRUE((OFP8E5M2(1.0) / OFP8E5M2(0.0)).is_inf());
}

TEST(Robustness, CrossFormatMatrixConversionChain) {
  // double -> takum32 -> float -> posit16: conversions compose and stay
  // within each format's rounding (pattern preserved throughout).
  Rng rng(1300);
  const CooMatrix lap = graph_laplacian_pipeline(erdos_renyi(40, 0.2, rng));
  const auto a = CsrMatrix<double>::from_coo(lap);
  const auto chain = a.convert<Takum32>().convert<float>().convert<Posit16>();
  EXPECT_EQ(chain.nnz(), a.nnz());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    EXPECT_NEAR(chain.at(i, i).to_double(), a.at(i, i), 1e-3);
  }
}

TEST(Robustness, StartVectorAllZerosInTargetFormat) {
  // A start vector whose entries all underflow the format: detected and
  // reported, not silently divided by zero. (OFP8 E4M3 flushes 1e-6 to 0.)
  const auto a = from_entries(20, {{0, 0, 1.0}, {1, 1, 2.0}});
  const auto a8 = a.convert<OFP8E4M3>();
  std::vector<double> start(20, 0.0);
  start[0] = 1e-6;
  PartialSchurOptions opts;
  opts.nev = 2;
  opts.start_vector = &start;
  const auto r = partialschur<OFP8E4M3>(a8, opts);
  if (!r.converged) {
    EXPECT_FALSE(r.failure.empty());
  }
  SUCCEED();  // reaching here without UB/crash is the contract
}

TEST(Robustness, HungarianDegenerateSimilarity) {
  // All-zero eigenvector blocks produce zero similarity rows; matching must
  // still return a valid permutation.
  DenseMatrix<double> ref(10, 3), cmp(10, 3);
  ref(0, 0) = 1.0;  // only one non-degenerate column
  const auto match = match_eigenvectors(ref, cmp);
  EXPECT_EQ(match.permutation.size(), 3u);
  for (const int p : match.permutation) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
}

}  // namespace
}  // namespace mfla
