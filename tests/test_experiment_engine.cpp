// Task-parallel engine tests: thread-count invariance (bit-identical CSVs),
// checkpoint journal round-trips, resume after a simulated crash, meta
// validation, and reference-failure journaling. Cross-checks against the
// legacy run_matrix path deliberately.
#define MFLA_ALLOW_DEPRECATED
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/results_io.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "support/failpoint.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

std::vector<TestMatrix> engine_dataset() {
  std::vector<TestMatrix> ds;
  Rng r1(3001), r2(3002), r3(3003);
  ds.push_back(make_test_matrix("eng_er_a", "social", "soc",
                                graph_laplacian_pipeline(erdos_renyi(44, 0.15, r1))));
  ds.push_back(make_test_matrix("eng_sbm_b", "social", "soc",
                                graph_laplacian_pipeline(stochastic_block(48, 2, 0.35, 0.06, r2))));
  ds.push_back(make_test_matrix("eng_er_c", "biological", "protein",
                                graph_laplacian_pipeline(erdos_renyi(52, 0.12, r3))));
  return ds;
}

std::vector<FormatId> engine_formats() {
  return {FormatId::float32, FormatId::takum16, FormatId::float64};
}

ExperimentConfig engine_config() {
  ExperimentConfig cfg;
  cfg.nev = 6;
  cfg.buffer = 2;
  cfg.max_restarts = 80;
  cfg.reference_max_restarts = 150;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string csv_of(const std::vector<MatrixResult>& results, const std::string& tag) {
  const std::string path = "test_out/engine_" + tag + ".csv";
  write_results_csv(path, results);
  std::string data = slurp(path);
  std::remove(path.c_str());
  return data;
}

TEST(ExperimentEngine, ThreadCountInvariantResults) {
  const auto ds = engine_dataset();
  const auto formats = engine_formats();
  const auto cfg = engine_config();

  ScheduleOptions serial;
  serial.threads = 1;
  ScheduleOptions parallel;
  parallel.threads = 4;

  const auto r1 = run_experiment(ds, formats, cfg, serial);
  const auto r4 = run_experiment(ds, formats, cfg, parallel);
  // Legacy per-matrix path must agree too.
  std::vector<MatrixResult> expected;
  expected.reserve(ds.size());
  for (const auto& tm : ds) expected.push_back(run_matrix(tm, formats, cfg));

  const std::string csv1 = csv_of(r1, "t1");
  EXPECT_FALSE(csv1.empty());
  EXPECT_EQ(csv1, csv_of(r4, "t4"));
  EXPECT_EQ(csv1, csv_of(expected, "seq"));
}

TEST(ExperimentEngine, JournalRoundTrip) {
  const auto ds = engine_dataset();
  const auto formats = engine_formats();
  const auto cfg = engine_config();
  const std::string ck = "test_out/engine_journal.jsonl";
  std::remove(ck.c_str());

  ScheduleOptions sched;
  sched.threads = 2;
  sched.checkpoint_path = ck;
  const auto results = run_experiment(ds, formats, cfg, sched);
  for (const auto& r : results) ASSERT_TRUE(r.reference_ok) << r.reference_failure;

  const JournalContents jc = read_journal(ck);
  EXPECT_TRUE(jc.has_meta);
  EXPECT_EQ(jc.meta, make_journal_meta(cfg, formats, ds.size()));
  EXPECT_EQ(jc.skipped_lines, 0u);
  EXPECT_TRUE(jc.reference_failures.empty());
  ASSERT_EQ(jc.runs.size(), ds.size() * formats.size());
  for (const auto& mr : results) {
    for (const auto& run : mr.runs) {
      const auto it = jc.runs.find({mr.name, run.format});
      ASSERT_NE(it, jc.runs.end());
      EXPECT_EQ(it->second.n, mr.n);
      EXPECT_EQ(it->second.nnz, mr.nnz);
      EXPECT_EQ(it->second.run.outcome, run.outcome);
      // Exact round-trip: doubles survive the journal bit-for-bit.
      EXPECT_EQ(it->second.run.eigenvalue_error.relative, run.eigenvalue_error.relative);
      EXPECT_EQ(it->second.run.eigenvector_error.relative, run.eigenvector_error.relative);
      EXPECT_EQ(it->second.run.mean_similarity, run.mean_similarity);
      EXPECT_EQ(it->second.run.matvecs, run.matvecs);
    }
  }
  std::remove(ck.c_str());
}

TEST(ExperimentEngine, ResumeAfterTruncationMatchesUninterruptedRun) {
  const auto ds = engine_dataset();
  const auto formats = engine_formats();
  const auto cfg = engine_config();
  const std::string ck_full = "test_out/engine_full.jsonl";
  const std::string ck_cut = "test_out/engine_cut.jsonl";
  std::remove(ck_full.c_str());

  ScheduleOptions sched;
  sched.threads = 2;
  sched.checkpoint_path = ck_full;
  const std::string csv_full = csv_of(run_experiment(ds, formats, cfg, sched), "full");

  // Simulate a crash: keep the meta line plus the first three completed
  // runs, then a torn final line from a write that was killed mid-flight.
  {
    std::ifstream in(ck_full);
    std::ofstream out(ck_cut, std::ios::trunc);
    std::string line;
    for (int kept = 0; kept < 4 && std::getline(in, line); ++kept) out << line << '\n';
    out << "{\"type\":\"run\",\"matrix\":\"eng_";  // torn write, no newline
  }

  ScheduleOptions resume;
  resume.threads = 2;
  resume.checkpoint_path = ck_cut;
  resume.resume = true;
  std::size_t resumed_total = 0;
  resume.on_progress = [&resumed_total](const ExperimentProgress& p) { resumed_total = p.total; };
  const std::string csv_resumed = csv_of(run_experiment(ds, formats, cfg, resume), "resumed");

  EXPECT_EQ(csv_full, csv_resumed);
  // Only the missing runs were scheduled (9 total, 3 were journaled).
  EXPECT_EQ(resumed_total, ds.size() * formats.size() - 3);
  // The journal is now complete again: a second resume schedules nothing.
  ScheduleOptions noop = resume;
  bool progressed = false;
  noop.on_progress = [&progressed](const ExperimentProgress&) { progressed = true; };
  const std::string csv_noop = csv_of(run_experiment(ds, formats, cfg, noop), "noop");
  EXPECT_EQ(csv_full, csv_noop);
  EXPECT_FALSE(progressed);

  std::remove(ck_full.c_str());
  std::remove(ck_cut.c_str());
}

TEST(ExperimentEngine, ResumeRestoresTornMetaLine) {
  // A crash during the very first journal write leaves a torn meta line.
  // Resuming must rewrite the meta so later resumes still validate.
  const auto ds = engine_dataset();
  const auto formats = engine_formats();
  const auto cfg = engine_config();
  const std::string ck = "test_out/engine_torn_meta.jsonl";
  {
    std::ofstream out(ck, std::ios::trunc);
    out << "{\"type\":\"meta\",\"nev\"";  // torn, no newline
  }
  ScheduleOptions resume;
  resume.threads = 2;
  resume.checkpoint_path = ck;
  resume.resume = true;
  (void)run_experiment(ds, formats, cfg, resume);
  const JournalContents jc = read_journal(ck);
  EXPECT_TRUE(jc.has_meta);
  EXPECT_EQ(jc.meta, make_journal_meta(cfg, formats, ds.size()));

  ExperimentConfig other = cfg;
  other.nev = cfg.nev + 1;
  EXPECT_THROW((void)run_experiment(ds, formats, other, resume), std::runtime_error);
  std::remove(ck.c_str());
}

TEST(ExperimentEngine, ResumeRejectsMismatchedMeta) {
  const auto ds = engine_dataset();
  const auto formats = engine_formats();
  const auto cfg = engine_config();
  const std::string ck = "test_out/engine_meta.jsonl";
  std::remove(ck.c_str());

  ScheduleOptions sched;
  sched.threads = 1;
  sched.checkpoint_path = ck;
  (void)run_experiment(ds, formats, cfg, sched);

  ExperimentConfig other = cfg;
  other.nev = cfg.nev + 1;
  ScheduleOptions resume = sched;
  resume.resume = true;
  EXPECT_THROW((void)run_experiment(ds, formats, other, resume), std::runtime_error);
  std::remove(ck.c_str());
}

TEST(ExperimentEngine, ReferenceFailureJournaledAndSkippedOnResume) {
  const auto ds = engine_dataset();
  const auto formats = engine_formats();
  ExperimentConfig cfg = engine_config();
  cfg.reference_max_restarts = 0;  // impossible budget: every reference fails
  const std::string ck = "test_out/engine_reffail.jsonl";
  std::remove(ck.c_str());

  ScheduleOptions sched;
  sched.threads = 2;
  sched.checkpoint_path = ck;
  const auto results = run_experiment(ds, formats, cfg, sched);
  for (const auto& r : results) {
    EXPECT_FALSE(r.reference_ok);
    EXPECT_TRUE(r.runs.empty());
  }
  const JournalContents jc = read_journal(ck);
  EXPECT_EQ(jc.reference_failures.size(), ds.size());
  EXPECT_TRUE(jc.runs.empty());

  ScheduleOptions resume = sched;
  resume.resume = true;
  bool progressed = false;
  resume.on_progress = [&progressed](const ExperimentProgress&) { progressed = true; };
  const auto resumed = run_experiment(ds, formats, cfg, resume);
  EXPECT_FALSE(progressed);  // failures were replayed, not recomputed
  EXPECT_EQ(csv_of(results, "reffail_a"), csv_of(resumed, "reffail_b"));
  std::remove(ck.c_str());
}

TEST(ExperimentEngine, FaultRunsJournaledAndReplayedOnResume) {
  // Solver aborts (failpoint-injected) are recorded as `fault` runs; the
  // journal must round-trip that outcome, and a resume must replay the
  // faulted runs instead of re-solving them.
  const auto ds = engine_dataset();
  const auto formats = engine_formats();
  const ExperimentConfig cfg = engine_config();
  const std::string ck = "test_out/engine_fault.jsonl";
  std::remove(ck.c_str());

  failpoint::arm_from_spec("engine.format_run=error(eio)");
  SweepStats stats;
  ScheduleOptions sched;
  sched.threads = 2;
  sched.checkpoint_path = ck;
  sched.stats = &stats;
  const auto results = run_experiment(ds, formats, cfg, sched);
  failpoint::disarm_all();
  EXPECT_EQ(stats.solve_faults, ds.size() * formats.size());
  for (const auto& r : results)
    for (const auto& run : r.runs) EXPECT_EQ(run.outcome, RunOutcome::fault);

  const JournalContents jc = read_journal(ck);
  ASSERT_EQ(jc.runs.size(), ds.size() * formats.size());
  for (const auto& [key, jr] : jc.runs) EXPECT_EQ(jr.run.outcome, RunOutcome::fault);

  SweepStats resume_stats;
  ScheduleOptions resume = sched;
  resume.resume = true;
  resume.stats = &resume_stats;
  bool progressed = false;
  resume.on_progress = [&progressed](const ExperimentProgress&) { progressed = true; };
  const auto resumed = run_experiment(ds, formats, cfg, resume);
  EXPECT_FALSE(progressed);  // everything replayed, nothing re-solved
  EXPECT_EQ(resume_stats.journal_replayed_runs, ds.size() * formats.size());
  EXPECT_EQ(csv_of(results, "fault_a"), csv_of(resumed, "fault_b"));
  std::remove(ck.c_str());
}

TEST(ExperimentEngine, ResumeRecomputesMatrixWhoseContentsChanged) {
  // Journal entries are stamped with (n, nnz); if a same-named matrix now
  // has different contents, its runs recompute instead of replaying stale
  // results.
  auto ds = engine_dataset();
  const auto formats = engine_formats();
  const auto cfg = engine_config();
  const std::string ck = "test_out/engine_stale.jsonl";
  std::remove(ck.c_str());

  ScheduleOptions sched;
  sched.threads = 2;
  sched.checkpoint_path = ck;
  (void)run_experiment(ds, formats, cfg, sched);

  Rng rng(3100);
  ds[0] = make_test_matrix(ds[0].name, ds[0].klass, ds[0].category,
                           graph_laplacian_pipeline(erdos_renyi(40, 0.18, rng)));
  ScheduleOptions resume = sched;
  resume.resume = true;
  std::size_t total = 0;
  resume.on_progress = [&total](const ExperimentProgress& p) { total = p.total; };
  const auto resumed = run_experiment(ds, formats, cfg, resume);
  EXPECT_EQ(total, formats.size());  // only the changed matrix was rerun
  EXPECT_EQ(resumed[0].n, ds[0].n());
  std::remove(ck.c_str());
}

TEST(ExperimentEngine, CheckpointRequiresUniqueMatrixNames) {
  auto ds = engine_dataset();
  ds.push_back(ds.front());  // duplicate name
  ScheduleOptions sched;
  sched.checkpoint_path = "test_out/engine_dup.jsonl";
  EXPECT_THROW((void)run_experiment(ds, engine_formats(), engine_config(), sched),
               std::runtime_error);
  std::remove(sched.checkpoint_path.c_str());
}

}  // namespace
}  // namespace mfla
