// Matrix Market reader edge cases: header variants, comment handling,
// 1-based index validation, and malformed-file error paths.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/matrix_market.hpp"

namespace mfla {
namespace {

// ---- header variants ---------------------------------------------------------

TEST(MatrixMarketHeaderTest, BannerIsCaseInsensitive) {
  std::istringstream in(
      "%%MATRIXMARKET MATRIX COORDINATE REAL SYMMETRIC\n"
      "2 2 1\n"
      "2 1 3.0\n");
  MatrixMarketHeader h;
  const CooMatrix m = read_matrix_market(in, &h);
  EXPECT_TRUE(h.coordinate);
  EXPECT_EQ(h.field, "real");
  EXPECT_EQ(h.symmetry, "symmetric");
  EXPECT_EQ(m.nnz(), 2u);  // off-diagonal mirrored
}

TEST(MatrixMarketHeaderTest, MissingSymmetryDefaultsToGeneral) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real\n"
      "2 2 1\n"
      "2 1 3.0\n");
  MatrixMarketHeader h;
  const CooMatrix m = read_matrix_market(in, &h);
  EXPECT_EQ(h.symmetry, "general");
  EXPECT_EQ(m.nnz(), 1u);  // no mirroring
}

TEST(MatrixMarketHeaderTest, SymmetricPatternExpandsWithUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  MatrixMarketHeader h;
  const CooMatrix m = read_matrix_market(in, &h);
  EXPECT_EQ(h.field, "pattern");
  EXPECT_EQ(h.symmetry, "symmetric");
  EXPECT_EQ(m.nnz(), 3u);  // (1,0), (0,1), (2,2)
  for (const auto& t : m.triplets()) EXPECT_DOUBLE_EQ(t.value, 1.0);
  EXPECT_TRUE(m.is_symmetric());
}

TEST(MatrixMarketHeaderTest, SkewSymmetricDiagonalNotMirrored) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 2\n"
      "1 1 4.0\n"
      "2 1 3.0\n");
  const CooMatrix m = read_matrix_market(in);
  // Diagonal entry kept as-is; only the off-diagonal is mirrored negated.
  const auto a = CsrMatrix<double>::from_coo(m);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -3.0);
}

TEST(MatrixMarketHeaderTest, HeaderOutputIsOptional) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "1 1 1\n"
      "1 1 2.0\n");
  EXPECT_NO_THROW({ (void)read_matrix_market(in, nullptr); });
}

TEST(MatrixMarketHeaderTest, ArraySkewSymmetricStoresStrictLowerTriangle) {
  // Skew-symmetric array data omits the (implicitly zero) diagonal:
  // a 3x3 file has exactly 3 values — a10, a20, a21.
  std::istringstream in(
      "%%MatrixMarket matrix array real skew-symmetric\n"
      "3 3\n"
      "2\n3\n4\n");
  const CooMatrix m = read_matrix_market(in);
  const auto a = CsrMatrix<double>::from_coo(m);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 2), -4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 0.0);
  EXPECT_EQ(m.nnz(), 6u);
}

// ---- comments and blank lines ------------------------------------------------

TEST(MatrixMarketComments, CommentsAndBlanksSkippedEverywhere) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% author: somebody\n"
      "# hash comments too\n"
      "\n"
      "   \n"
      "2 2 2\n"
      "%% between entries\n"
      "1 1 1.0\n"
      "\n"
      "   % indented comment\n"
      "2 2 2.0\n");
  const CooMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.nnz(), 2u);
}

TEST(MatrixMarketComments, CommentOnlyBodyIsMissingSizeLine) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% nothing but comments\n"
      "% follows the banner\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

// ---- 1-based index validation ------------------------------------------------

TEST(MatrixMarketIndices, ZeroIndexRejected) {
  std::istringstream r0(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "0 1 1.0\n");
  EXPECT_THROW(read_matrix_market(r0), std::runtime_error);
  std::istringstream c0(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 0 1.0\n");
  EXPECT_THROW(read_matrix_market(c0), std::runtime_error);
}

TEST(MatrixMarketIndices, NegativeIndexRejected) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "-1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarketIndices, OutOfBoundsIndexRejected) {
  std::istringstream row_oob(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 3 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(row_oob), std::runtime_error);
  std::istringstream col_oob(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 3 1\n"
      "1 4 1.0\n");
  EXPECT_THROW(read_matrix_market(col_oob), std::runtime_error);
}

TEST(MatrixMarketIndices, MaxValidIndicesAccepted) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 4 1\n"
      "3 4 9.0\n");
  const CooMatrix m = read_matrix_market(in);
  ASSERT_EQ(m.nnz(), 1u);
  EXPECT_EQ(m.triplets()[0].row, 2u);
  EXPECT_EQ(m.triplets()[0].col, 3u);
}

// ---- malformed files ---------------------------------------------------------

TEST(MatrixMarketMalformed, EmptyInput) {
  std::istringstream in("");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarketMalformed, UnsupportedHeaderCombinations) {
  std::istringstream complex_field(
      "%%MatrixMarket matrix coordinate complex general\n"
      "1 1 1\n"
      "1 1 1.0 0.0\n");
  EXPECT_THROW(read_matrix_market(complex_field), std::runtime_error);
  std::istringstream hermitian(
      "%%MatrixMarket matrix coordinate real hermitian\n"
      "1 1 1\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(hermitian), std::runtime_error);
  std::istringstream bad_format(
      "%%MatrixMarket matrix ellpack real general\n"
      "1 1 1\n");
  EXPECT_THROW(read_matrix_market(bad_format), std::runtime_error);
  std::istringstream array_pattern(
      "%%MatrixMarket matrix array pattern general\n"
      "1 1\n");
  EXPECT_THROW(read_matrix_market(array_pattern), std::runtime_error);
}

TEST(MatrixMarketMalformed, BadSizeLine) {
  std::istringstream nonnumeric(
      "%%MatrixMarket matrix coordinate real general\n"
      "two by two\n");
  EXPECT_THROW(read_matrix_market(nonnumeric), std::runtime_error);
  std::istringstream negative(
      "%%MatrixMarket matrix coordinate real general\n"
      "-2 2 1\n");
  EXPECT_THROW(read_matrix_market(negative), std::runtime_error);
}

TEST(MatrixMarketMalformed, NonNumericEntryValue) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1 banana\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarketMalformed, TruncatedCoordinateAndArrayData) {
  std::istringstream coord(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(coord), std::runtime_error);
  std::istringstream array(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1.0\n2.0\n3.0\n");
  EXPECT_THROW(read_matrix_market(array), std::runtime_error);
}

TEST(MatrixMarketMalformed, ErrorMessagePointsAtOffendingLine) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "2 9 1.0\n");  // bad entry on line 5
  try {
    (void)read_matrix_market(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos) << e.what();
  }
}

TEST(MatrixMarketMalformed, MissingFileHasPathInMessage) {
  try {
    (void)read_matrix_market_file("/nonexistent/path/to/matrix.mtx");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/path/to/matrix.mtx"), std::string::npos);
  }
}

TEST(MatrixMarketMalformed, ZeroEntryCoordinateMatrixIsValid) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "4 5 0\n");
  const CooMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.nnz(), 0u);
}

}  // namespace
}  // namespace mfla
