// Dense linear algebra tests: matrix container, BLAS kernels, Householder
// QR, Hessenberg reduction, Jacobi EVD.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "arith/posit.hpp"
#include "kernels/vector_ops.hpp"
#include "dense/hessenberg.hpp"
#include "dense/householder.hpp"
#include "dense/jacobi.hpp"
#include "dense/matrix.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

DenseMatrix<double> random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  DenseMatrix<double> m(r, c);
  for (std::size_t j = 0; j < c; ++j)
    for (std::size_t i = 0; i < r; ++i) m(i, j) = rng.normal();
  return m;
}

DenseMatrix<double> random_symmetric(std::size_t n, Rng& rng) {
  DenseMatrix<double> m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) {
      m(i, j) = rng.normal();
      m(j, i) = m(i, j);
    }
  return m;
}

TEST(DenseMatrix, BasicsAndIdentity) {
  auto m = DenseMatrix<double>::identity(4);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m(2, 2), 1.0);
  EXPECT_EQ(m(2, 1), 0.0);
  m(1, 3) = 7.0;
  EXPECT_EQ(m.transposed()(3, 1), 7.0);
  const auto t = m.top_left(2, 3);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t(1, 1), 1.0);
}

TEST(Blas, DotAxpyScalNrm2) {
  const std::size_t n = 100;
  std::vector<double> x(n, 2.0), y(n, 3.0);
  EXPECT_DOUBLE_EQ(kernels::dot(n, x.data(), y.data()), 600.0);
  kernels::axpy(n, 0.5, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  kernels::scal(n, 2.0, x.data());
  EXPECT_DOUBLE_EQ(x[10], 4.0);
  std::vector<double> e(n, 0.0);
  e[3] = -5.0;
  EXPECT_DOUBLE_EQ(kernels::nrm2(n, e.data()), 5.0);
}

TEST(Blas, GemvMatchesManual) {
  Rng rng(41);
  const auto a = random_matrix(7, 5, rng);
  std::vector<double> x(5), y(7), yt(5);
  for (auto& v : x) v = rng.normal();
  kernels::gemv(a, x.data(), y.data());
  for (std::size_t i = 0; i < 7; ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < 5; ++j) acc += a(i, j) * x[j];
    EXPECT_NEAR(y[i], acc, 1e-14);
  }
  std::vector<double> x7(7);
  for (auto& v : x7) v = rng.normal();
  kernels::gemv_t(a, x7.data(), yt.data());
  for (std::size_t j = 0; j < 5; ++j) {
    double acc = 0;
    for (std::size_t i = 0; i < 7; ++i) acc += a(i, j) * x7[i];
    EXPECT_NEAR(yt[j], acc, 1e-14);
  }
}

TEST(Blas, MatmulAssociativityWithIdentity) {
  Rng rng(42);
  const auto a = random_matrix(6, 6, rng);
  const auto i6 = DenseMatrix<double>::identity(6);
  const auto ai = kernels::matmul(a, i6);
  for (std::size_t j = 0; j < 6; ++j)
    for (std::size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(ai(i, j), a(i, j));
  const auto ata = kernels::matmul_tn(a, a);
  for (std::size_t j = 0; j < 6; ++j)
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_NEAR(ata(i, j), kernels::dot(6, a.col(i), a.col(j)), 1e-13);
}

TEST(Blas, UpdateBasis) {
  Rng rng(43);
  auto v = random_matrix(10, 5, rng);
  const auto v0 = v;
  auto w = random_matrix(5, 3, rng);
  kernels::update_basis(v, w, 3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 10; ++i) {
      double acc = 0;
      for (std::size_t l = 0; l < 5; ++l) acc += v0(i, l) * w(l, j);
      EXPECT_NEAR(v(i, j), acc, 1e-13);
    }
  // Columns beyond `keep` are untouched.
  for (std::size_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(v(i, 4), v0(i, 4));
}

TEST(Householder, ThinQrReconstructs) {
  Rng rng(44);
  const auto a = random_matrix(12, 6, rng);
  DenseMatrix<double> q, r;
  ASSERT_TRUE(qr_factor(a, q, r));
  const auto qr = kernels::matmul(q, r);
  for (std::size_t j = 0; j < 6; ++j)
    for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(qr(i, j), a(i, j), 1e-12);
  const auto qtq = kernels::matmul_tn(q, q);
  for (std::size_t j = 0; j < 6; ++j)
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_NEAR(qtq(i, j), i == j ? 1.0 : 0.0, 1e-13);
  // R upper triangular.
  for (std::size_t j = 0; j < 6; ++j)
    for (std::size_t i = j + 1; i < 6; ++i) EXPECT_DOUBLE_EQ(r(i, j), 0.0);
}

TEST(Hessenberg, PatternAndSimilarity) {
  Rng rng(45);
  for (const std::size_t n : {3u, 5u, 10u, 24u}) {
    auto a = random_matrix(n, n, rng);
    const auto a0 = a;
    auto q = DenseMatrix<double>::identity(n);
    ASSERT_TRUE(hessenberg_reduce(a, q));
    for (std::size_t j = 0; j + 2 < n; ++j)
      for (std::size_t i = j + 2; i < n; ++i) EXPECT_NEAR(a(i, j), 0.0, 1e-13);
    // Q orthogonal and Q H Q^T == A0.
    const auto qtq = kernels::matmul_tn(q, q);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(qtq(i, j), i == j ? 1.0 : 0.0, 1e-12);
    const auto rec = kernels::matmul(kernels::matmul(q, a), q.transposed());
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rec(i, j), a0(i, j), 1e-11);
  }
}

TEST(Hessenberg, SpikeShapeInput) {
  // The Krylov-Schur restart feeds (triangular + spike row) matrices.
  Rng rng(46);
  const std::size_t n = 12;
  DenseMatrix<double> a(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i <= j; ++i) a(i, j) = rng.normal();
    a(7, j) = rng.normal();  // spike row
  }
  const auto a0 = a;
  auto q = DenseMatrix<double>::identity(n);
  ASSERT_TRUE(hessenberg_reduce(a, q));
  const auto rec = kernels::matmul(kernels::matmul(q, a), q.transposed());
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rec(i, j), a0(i, j), 1e-11);
}

class JacobiSizes : public ::testing::TestWithParam<int> {};

TEST_P(JacobiSizes, DiagonalizesSymmetric) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(47 + GetParam());
  auto a = random_symmetric(n, rng);
  const auto a0 = a;
  DenseMatrix<double> v;
  const int sweeps = jacobi_eigen(a, v);
  ASSERT_GT(sweeps, 0);
  // A0 V = V D.
  const auto av = kernels::matmul(a0, v);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(av(i, j), v(i, j) * a(j, j), 1e-10);
  // Eigenvalue sum = trace.
  double tr = 0, sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tr += a0(i, i);
    sum += a(i, i);
  }
  EXPECT_NEAR(tr, sum, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiSizes, ::testing::Values(2, 3, 5, 8, 13, 21, 34));

TEST(Jacobi, KnownSpectrum) {
  // 2x2 [[2,1],[1,2]] has eigenvalues 1 and 3.
  DenseMatrix<double> a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  DenseMatrix<double> v;
  ASSERT_GT(jacobi_eigen(a, v), 0);
  std::vector<double> eigs{a(0, 0), a(1, 1)};
  std::sort(eigs.begin(), eigs.end());
  EXPECT_NEAR(eigs[0], 1.0, 1e-14);
  EXPECT_NEAR(eigs[1], 3.0, 1e-14);
}

TEST(DenseLowPrecision, KernelsRunInPosit16) {
  // The kernels are format-generic; smoke the posit16 instantiation.
  const std::size_t n = 32;
  std::vector<Posit16> x(n), y(n);
  Rng rng(48);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = Posit16(rng.normal());
    y[i] = Posit16(rng.normal());
  }
  const Posit16 d = kernels::dot(n, x.data(), y.data());
  double dd = 0;
  for (std::size_t i = 0; i < n; ++i) dd += x[i].to_double() * y[i].to_double();
  EXPECT_NEAR(d.to_double(), dd, 0.02 * std::abs(dd) + 0.02);
  const Posit16 nr = kernels::nrm2(n, x.data());
  EXPECT_GT(nr.to_double(), 0.0);
}

}  // namespace
}  // namespace mfla
