// Sparse substrate tests: COO assembly, CSR conversion and matvec,
// Matrix Market and edge-list IO.
#include <gtest/gtest.h>

#include <sstream>

#include "arith/posit.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/edge_list.hpp"
#include "sparse/matrix_market.hpp"
#include "support/rng.hpp"

namespace mfla {
namespace {

TEST(Coo, CompressSumsDuplicatesAndDropsZeros) {
  CooMatrix a(3, 3);
  a.add(0, 1, 1.5);
  a.add(0, 1, 2.5);
  a.add(1, 2, 3.0);
  a.add(2, 2, 1.0);
  a.add(2, 2, -1.0);  // cancels to zero
  a.compress();
  EXPECT_EQ(a.nnz(), 2u);
  EXPECT_DOUBLE_EQ(a.triplets()[0].value, 4.0);
  EXPECT_EQ(a.triplets()[0].row, 0u);
  EXPECT_EQ(a.triplets()[0].col, 1u);
}

TEST(Coo, ShapeGrowsWithEntries) {
  CooMatrix a;
  a.add(5, 2, 1.0);
  EXPECT_EQ(a.rows(), 6u);
  EXPECT_EQ(a.cols(), 3u);
}

TEST(Coo, SymmetryCheck) {
  CooMatrix a(2, 2);
  a.add(0, 1, 2.0);
  a.add(1, 0, 2.0);
  EXPECT_TRUE(a.is_symmetric());
  CooMatrix b(2, 2);
  b.add(0, 1, 2.0);
  EXPECT_FALSE(b.is_symmetric());
  CooMatrix c(2, 3);
  EXPECT_FALSE(c.is_symmetric());
}

TEST(Csr, FromCooAndMatvec) {
  CooMatrix coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(0, 2, 1.0);
  coo.add(1, 1, -1.0);
  coo.add(2, 0, 4.0);
  const auto a = CsrMatrix<double>::from_coo(coo);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.nnz(), 4u);
  const double x[3] = {1.0, 2.0, 3.0};
  double y[3];
  a.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 0.0);
}

TEST(Csr, AtBinarySearchFindsEveryEntry) {
  // Row patterns chosen to exercise the binary search: a dense-ish row, a
  // single-entry row, an empty row, and a row ending at the last column.
  CooMatrix coo(4, 6);
  coo.add(0, 0, 1.0);   // first entry of row 0
  coo.add(0, 2, 2.0);   // middle
  coo.add(0, 5, 3.0);   // last entry of row 0 = last column
  coo.add(1, 3, 4.0);   // lone entry
  // row 2 empty
  coo.add(3, 1, 5.0);
  coo.add(3, 4, 6.0);
  const auto a = CsrMatrix<double>::from_coo(coo);

  // Every present entry is found (first, middle, last within a row).
  EXPECT_DOUBLE_EQ(a.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 5), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 3), 4.0);
  EXPECT_DOUBLE_EQ(a.at(3, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.at(3, 4), 6.0);

  // Absent columns: below the first, between entries, above the last, and
  // every column of an empty row.
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(a.at(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(a.at(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(a.at(1, 5), 0.0);
  for (std::size_t j = 0; j < 6; ++j) EXPECT_DOUBLE_EQ(a.at(2, j), 0.0);
  EXPECT_DOUBLE_EQ(a.at(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(a.at(3, 5), 0.0);

  // Cross-check against the dense expansion on a random matrix.
  Rng rng(77);
  CooMatrix rnd(12, 12);
  for (int k = 0; k < 40; ++k) {
    rnd.add(static_cast<std::uint32_t>(rng.uniform_index(12)),
            static_cast<std::uint32_t>(rng.uniform_index(12)), rng.normal());
  }
  CooMatrix compressed = rnd;
  compressed.compress();
  const auto b = CsrMatrix<double>::from_coo(rnd);
  std::vector<double> dense(12 * 12, 0.0);
  for (const auto& t : compressed.triplets()) dense[t.row * 12 + t.col] = t.value;
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 12; ++j) EXPECT_DOUBLE_EQ(b.at(i, j), dense[i * 12 + j]);
}

TEST(Csr, ConvertChangesFormatNotPattern) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0 / 3.0);
  coo.add(1, 1, 1e10);
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto p = a.convert<Posit16>();
  EXPECT_EQ(p.nnz(), a.nnz());
  EXPECT_NEAR(p.at(0, 0).to_double(), 1.0 / 3.0, 1e-4);
  // posit16 saturates at 2^56, so 1e10 survives (with rounding).
  EXPECT_GT(p.at(1, 1).to_double(), 5e9);
}

TEST(Csr, MutableValuesInvalidatesPlannedPaths) {
  // mutable_values() must drop ALL precomputed plans together (the
  // per-nonzero offset plan and the SELL-8/SELL-16 slice plans behind it):
  // a stale plan indexes the operation tables by the old value bits, so
  // matvec and matvec_block would silently compute with the pre-edit
  // matrix. A 40-row matrix gives the SELL-16 plan multiple slices.
  CooMatrix coo(40, 40);
  Rng rng("mutable_values", 0);
  for (std::uint32_t r = 0; r < 40; ++r)
    for (std::uint32_t c = 0; c < 40; ++c)
      if (r == c || rng.uniform() < 0.08) coo.add(r, c, rng.normal());
  auto a = CsrMatrix<double>::from_coo(coo).convert<Posit8>();
  ASSERT_TRUE(a.has_spmv_plan());

  std::vector<Posit8> x;
  for (std::size_t i = 0; i < a.cols(); ++i)
    x.push_back(NumTraits<Posit8>::from_double(rng.normal()));
  const std::size_t k = 17;  // AVX-512 16-chunk + tail in matvec_block
  std::vector<Posit8> xb;
  for (std::size_t i = 0; i < k * a.cols(); ++i)
    xb.push_back(NumTraits<Posit8>::from_double(rng.normal()));

  // Edit a value in place: the plans must go stale together.
  a.mutable_values()[0] = NumTraits<Posit8>::from_double(7.0);
  EXPECT_FALSE(a.has_spmv_plan());

  // Generic fallbacks must see the NEW value (bit-compare against the
  // dispatching kernels on the same arrays).
  std::vector<Posit8> y(a.rows()), want(a.rows());
  a.matvec(x.data(), y.data());
  kernels::spmv(a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data(), x.data(),
                want.data());
  for (std::size_t i = 0; i < a.rows(); ++i)
    ASSERT_EQ(ScalarCodec<Posit8>::to_bits(y[i]), ScalarCodec<Posit8>::to_bits(want[i]));
  std::vector<Posit8> yb(k * a.rows()), wantb(k * a.rows());
  a.matvec_block(xb.data(), a.cols(), k, yb.data(), a.rows());
  kernels::spmm(a.rows(), a.row_ptr().data(), a.col_idx().data(), a.values().data(), k,
                xb.data(), a.cols(), wantb.data(), a.rows());
  for (std::size_t i = 0; i < yb.size(); ++i)
    ASSERT_EQ(ScalarCodec<Posit8>::to_bits(yb[i]), ScalarCodec<Posit8>::to_bits(wantb[i]));

  // Rebuilding restores the planned paths (including the SELL plans when
  // the SIMD tiers are compiled in) with bit-identical results.
  a.rebuild_spmv_plan();
  EXPECT_TRUE(a.has_spmv_plan());
  std::vector<Posit8> y2(a.rows()), yb2(k * a.rows());
  a.matvec(x.data(), y2.data());
  a.matvec_block(xb.data(), a.cols(), k, yb2.data(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    ASSERT_EQ(ScalarCodec<Posit8>::to_bits(y2[i]), ScalarCodec<Posit8>::to_bits(y[i]));
  for (std::size_t i = 0; i < yb2.size(); ++i)
    ASSERT_EQ(ScalarCodec<Posit8>::to_bits(yb2[i]), ScalarCodec<Posit8>::to_bits(yb[i]));
}

TEST(Csr, MatrixExceedsRange) {
  CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1e8);  // above float16 max (65504)
  const auto a = CsrMatrix<double>::from_coo(coo);
  EXPECT_TRUE(matrix_exceeds_range<Float16>(a));
  EXPECT_FALSE(matrix_exceeds_range<float>(a));
  EXPECT_FALSE(matrix_exceeds_range<Posit16>(a));  // posits saturate
}

// ---- Matrix Market ------------------------------------------------------------

TEST(MatrixMarket, CoordinateGeneral) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment line\n"
      "\n"
      "3 3 2\n"
      "1 2 4.5\n"
      "3 1 -1\n");
  MatrixMarketHeader h;
  const CooMatrix m = read_matrix_market(in, &h);
  EXPECT_TRUE(h.coordinate);
  EXPECT_EQ(h.symmetry, "general");
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.triplets()[0].value, 4.5);
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "2 1 5.0\n");
  const CooMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 3u);  // (0,0), (1,0), (0,1)
  EXPECT_TRUE(m.is_symmetric());
}

TEST(MatrixMarket, SkewSymmetricExpansion) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const CooMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 2u);
  CooMatrix t = m.transposed();
  t.compress();
  EXPECT_DOUBLE_EQ(m.triplets()[0].value, -t.triplets()[0].value);
}

TEST(MatrixMarket, PatternField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const CooMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.triplets()[0].value, 1.0);
}

TEST(MatrixMarket, IntegerField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 2 7\n");
  const CooMatrix m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.triplets()[0].value, 7.0);
}

TEST(MatrixMarket, ArrayFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n"
      "1\n2\n3\n4\n");
  const CooMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.nnz(), 4u);
  // Column-major: (0,0)=1 (1,0)=2 (0,1)=3 (1,1)=4.
  const auto a = CsrMatrix<double>::from_coo(m);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 2.0);
}

TEST(MatrixMarket, ArraySymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix array real symmetric\n"
      "2 2\n"
      "1\n2\n5\n");  // lower triangle by columns: a00, a10, a11
  const CooMatrix m = read_matrix_market(in);
  const auto a = CsrMatrix<double>::from_coo(m);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 5.0);
}

TEST(MatrixMarket, RejectsGarbage) {
  std::istringstream in1("not a banner\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(in1), std::runtime_error);
  std::istringstream in2("%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n");
  EXPECT_THROW(read_matrix_market(in2), std::runtime_error);  // out of bounds
  std::istringstream in3("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n");
  EXPECT_THROW(read_matrix_market(in3), std::runtime_error);  // truncated
  std::istringstream in4("%%MatrixMarket tensor coordinate real general\n");
  EXPECT_THROW(read_matrix_market(in4), std::runtime_error);  // not a matrix
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  Rng rng(55);
  CooMatrix m(10, 8);
  for (int k = 0; k < 30; ++k) {
    m.add(static_cast<std::uint32_t>(rng.uniform_index(10)),
          static_cast<std::uint32_t>(rng.uniform_index(8)), rng.normal());
  }
  m.compress();
  std::ostringstream out;
  write_matrix_market(out, m);
  std::istringstream in(out.str());
  const CooMatrix back = read_matrix_market(in);
  ASSERT_EQ(back.nnz(), m.nnz());
  EXPECT_EQ(back.rows(), m.rows());
  for (std::size_t i = 0; i < m.nnz(); ++i) {
    EXPECT_EQ(back.triplets()[i].row, m.triplets()[i].row);
    EXPECT_EQ(back.triplets()[i].col, m.triplets()[i].col);
    EXPECT_DOUBLE_EQ(back.triplets()[i].value, m.triplets()[i].value);
  }
}

// ---- Edge lists ------------------------------------------------------------------

TEST(EdgeList, BasicParsing) {
  std::istringstream in(
      "% a comment\n"
      "# another comment\n"
      "1 2\n"
      "2 3\n"
      "3 1\n");
  const CooMatrix m = read_edge_list(in);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.nnz(), 3u);  // directed triangle
}

TEST(EdgeList, WeightsAndSeparators) {
  std::istringstream in("1,2,2.5\n2;3;0.5\n1\t3\t1.0\n");
  const CooMatrix m = read_edge_list(in);
  EXPECT_EQ(m.nnz(), 3u);
  double total = 0;
  for (const auto& t : m.triplets()) total += t.value;
  EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST(EdgeList, IgnoresWeightsWhenAsked) {
  std::istringstream in("1 2 99.0\n");
  EdgeListOptions opts;
  opts.use_weights = false;
  const CooMatrix m = read_edge_list(in, opts);
  EXPECT_DOUBLE_EQ(m.triplets()[0].value, 1.0);
}

TEST(EdgeList, NonContiguousIdsCompacted) {
  std::istringstream in("100 200\n200 4000\n");
  const CooMatrix m = read_edge_list(in);
  EXPECT_EQ(m.rows(), 3u);  // three distinct vertices
  EXPECT_EQ(m.cols(), 3u);
}

TEST(EdgeList, ZeroBasedIdsWork) {
  std::istringstream in("0 1\n1 2\n");
  const CooMatrix m = read_edge_list(in);
  EXPECT_EQ(m.rows(), 3u);
}

TEST(EdgeList, BadLineThrows) {
  std::istringstream in("1 banana\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

}  // namespace
}  // namespace mfla
