// Failpoint framework tests: spec/env parsing, trigger semantics, the
// unarmed fast path, RAII scoping, and registry thread safety (this file
// also runs under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/failpoint.hpp"

namespace fp = mfla::failpoint;

namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("MFLA_FAILPOINTS");
    fp::disarm_all();
    fp::set_seed(0);  // restore the default probability seed
  }
  void TearDown() override {
    fp::disarm_all();
    fp::set_seed(0);
  }
};

fp::Config error_cfg(int code) {
  fp::Config cfg;
  cfg.action = fp::Action::error;
  cfg.error_code = code;
  return cfg;
}

TEST_F(FailpointTest, UnarmedIsCompleteNoop) {
  EXPECT_FALSE(fp::any_armed());
  EXPECT_EQ(MFLA_FAILPOINT("test.nothing"), 0);
  // An unarmed macro must not even touch the registry: no hit recorded.
  EXPECT_EQ(fp::stats("test.nothing").hits, 0u);
}

TEST_F(FailpointTest, ArmedOtherNameStillReturnsZero) {
  fp::arm("test.other", error_cfg(5));
  EXPECT_TRUE(fp::any_armed());
  EXPECT_EQ(MFLA_FAILPOINT("test.mine"), 0);
  EXPECT_EQ(MFLA_FAILPOINT("test.other"), 5);
}

TEST_F(FailpointTest, ErrorActionReturnsItsErrno) {
  fp::arm("test.err", error_cfg(28));
  EXPECT_EQ(MFLA_FAILPOINT("test.err"), 28);
  EXPECT_EQ(MFLA_FAILPOINT("test.err"), 28);
  const fp::Stats s = fp::stats("test.err");
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.fires, 2u);
}

TEST_F(FailpointTest, FromHitTriggerSkipsEarlyHits) {
  fp::Config cfg = error_cfg(5);
  cfg.from_hit = 3;
  fp::arm("test.from", cfg);
  EXPECT_EQ(MFLA_FAILPOINT("test.from"), 0);
  EXPECT_EQ(MFLA_FAILPOINT("test.from"), 0);
  EXPECT_EQ(MFLA_FAILPOINT("test.from"), 5);  // hit 3: fires from here on
  EXPECT_EQ(MFLA_FAILPOINT("test.from"), 5);
  const fp::Stats s = fp::stats("test.from");
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.fires, 2u);
}

TEST_F(FailpointTest, FireCountWindowStopsFiring) {
  fp::Config cfg = error_cfg(13);
  cfg.from_hit = 2;
  cfg.fire_count = 2;  // fire on hits 2 and 3 only
  fp::arm("test.window", cfg);
  EXPECT_EQ(MFLA_FAILPOINT("test.window"), 0);
  EXPECT_EQ(MFLA_FAILPOINT("test.window"), 13);
  EXPECT_EQ(MFLA_FAILPOINT("test.window"), 13);
  EXPECT_EQ(MFLA_FAILPOINT("test.window"), 0);
  EXPECT_EQ(fp::stats("test.window").fires, 2u);
}

TEST_F(FailpointTest, ProbabilityZeroNeverFiresProbabilityOneAlwaysFires) {
  fp::Config never = error_cfg(5);
  never.probability = 0.0;
  fp::arm("test.p0", never);
  fp::Config always = error_cfg(5);
  always.probability = 1.0;
  fp::arm("test.p1", always);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(MFLA_FAILPOINT("test.p0"), 0);
    EXPECT_EQ(MFLA_FAILPOINT("test.p1"), 5);
  }
  EXPECT_EQ(fp::stats("test.p0").fires, 0u);
  EXPECT_EQ(fp::stats("test.p1").fires, 50u);
}

TEST_F(FailpointTest, ProbabilityStreamIsDeterministicPerSeed) {
  fp::Config cfg = error_cfg(5);
  cfg.probability = 0.5;

  auto sample = [&](std::uint64_t seed) {
    fp::set_seed(seed);
    fp::arm("test.p50", cfg);  // re-arming resets counters and the stream
    std::vector<int> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(MFLA_FAILPOINT("test.p50") != 0 ? 1 : 0);
    return fired;
  };

  const auto a = sample(42);
  const auto b = sample(42);
  EXPECT_EQ(a, b);
  // And roughly fair: a 0.5 stream firing never or always would mean the
  // trigger is broken, not unlucky (P < 2^-60).
  int fires = 0;
  for (const int f : a) fires += f;
  EXPECT_GT(fires, 5);
  EXPECT_LT(fires, 59);
}

TEST_F(FailpointTest, ThrowActionThrowsInjected) {
  fp::Config cfg;
  cfg.action = fp::Action::throw_exception;
  fp::arm("test.throw", cfg);
  try {
    (void)MFLA_FAILPOINT("test.throw");
    FAIL() << "expected fp::Injected";
  } catch (const fp::Injected& e) {
    EXPECT_NE(std::string(e.what()).find("test.throw"), std::string::npos);
  }
}

TEST_F(FailpointTest, DelayActionSleepsAndReturnsZero) {
  fp::Config cfg;
  cfg.action = fp::Action::delay;
  cfg.delay_ms = 20;
  fp::arm("test.delay", cfg);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(MFLA_FAILPOINT("test.delay"), 0);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 15);  // sleep_for may round, allow slack
}

TEST_F(FailpointTest, DisarmStopsFiringAndDisarmAllClearsEverything) {
  fp::arm("test.a", error_cfg(5));
  fp::arm("test.b", error_cfg(5));
  EXPECT_EQ(fp::armed_names().size(), 2u);
  fp::disarm("test.a");
  EXPECT_EQ(MFLA_FAILPOINT("test.a"), 0);
  EXPECT_EQ(MFLA_FAILPOINT("test.b"), 5);
  fp::disarm_all();
  EXPECT_FALSE(fp::any_armed());
  EXPECT_EQ(MFLA_FAILPOINT("test.b"), 0);
  EXPECT_TRUE(fp::armed_names().empty());
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnDestruction) {
  {
    fp::ScopedFailpoint scoped("test.scoped", error_cfg(5));
    EXPECT_EQ(MFLA_FAILPOINT("test.scoped"), 5);
  }
  EXPECT_FALSE(fp::any_armed());
  EXPECT_EQ(MFLA_FAILPOINT("test.scoped"), 0);
}

TEST_F(FailpointTest, SpecParsingArmsEveryClause) {
  const std::size_t n = fp::arm_from_spec(
      " a.x = error(enospc) @ 2 ; b.y=throw@p0.25, c.z=delay(7)@4+2 ;; d.w=error(122)");
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(fp::armed_names().size(), 4u);
  // a.x: ENOSPC from hit 2
  EXPECT_EQ(MFLA_FAILPOINT("a.x"), 0);
  EXPECT_EQ(MFLA_FAILPOINT("a.x"), 28);
  // d.w: numeric errno, every hit
  EXPECT_EQ(MFLA_FAILPOINT("d.w"), 122);
}

TEST_F(FailpointTest, MalformedSpecThrowsAndArmsNothing) {
  EXPECT_THROW(fp::arm_from_spec("a.x=error;b.y"), std::invalid_argument);
  EXPECT_THROW(fp::arm_from_spec("=error"), std::invalid_argument);
  EXPECT_THROW(fp::arm_from_spec("a=explode"), std::invalid_argument);
  EXPECT_THROW(fp::arm_from_spec("a=error(nonsense)"), std::invalid_argument);
  EXPECT_THROW(fp::arm_from_spec("a=error@0"), std::invalid_argument);
  EXPECT_THROW(fp::arm_from_spec("a=error@p1.5"), std::invalid_argument);
  EXPECT_THROW(fp::arm_from_spec("a=delay"), std::invalid_argument);
  // All-or-nothing: the valid first clause of a malformed spec is not armed.
  EXPECT_THROW(fp::arm_from_spec("good=error(5);bad=@@"), std::invalid_argument);
  EXPECT_FALSE(fp::any_armed());
}

TEST_F(FailpointTest, EnvArming) {
  ::setenv("MFLA_FAILPOINTS", "env.point=error(13)@2", 1);
  fp::arm_from_env();
  EXPECT_TRUE(fp::any_armed());
  EXPECT_EQ(MFLA_FAILPOINT("env.point"), 0);
  EXPECT_EQ(MFLA_FAILPOINT("env.point"), 13);
  ::unsetenv("MFLA_FAILPOINTS");
}

TEST_F(FailpointTest, MalformedEnvWarnsButDoesNotThrow) {
  ::setenv("MFLA_FAILPOINTS", "broken=!!", 1);
  EXPECT_NO_THROW(fp::arm_from_env());
  EXPECT_FALSE(fp::any_armed());
  ::unsetenv("MFLA_FAILPOINTS");
}

TEST_F(FailpointTest, ConcurrentEvaluateCountsEveryHit) {
  fp::Config cfg = error_cfg(5);
  cfg.from_hit = 1000000;  // never fires; we are testing the counters
  fp::arm("test.mt", cfg);

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  std::atomic<int> nonzero{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i)
        if (MFLA_FAILPOINT("test.mt") != 0) nonzero.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(nonzero.load(), 0);
  EXPECT_EQ(fp::stats("test.mt").hits, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_F(FailpointTest, ConcurrentArmDisarmWhileEvaluating) {
  // TSan target: hammer evaluate() on several threads while another thread
  // arms/disarms the same name. No assertion beyond "no race, no crash,
  // returns either 0 or the armed errno".
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const int v = MFLA_FAILPOINT("test.flicker");
        ASSERT_TRUE(v == 0 || v == 5);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    fp::arm("test.flicker", error_cfg(5));
    fp::disarm("test.flicker");
  }
  stop.store(true);
  for (auto& th : workers) th.join();
  EXPECT_EQ(MFLA_FAILPOINT("test.flicker"), 0);
}

}  // namespace
