// Quickstart: compute the 10 largest eigenpairs of a graph Laplacian in a
// low-precision format and compare against float64.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/quickstart
#include <cstdio>

#include "mfla.hpp"

int main() {
  using namespace mfla;

  // 1. Build a graph and its symmetrically normalized Laplacian.
  Rng rng("quickstart-graph");
  const CooMatrix adjacency = stochastic_block(/*n=*/200, /*blocks=*/4,
                                               /*p_in=*/0.25, /*p_out=*/0.02, rng);
  const CooMatrix laplacian = graph_laplacian_pipeline(adjacency);
  const auto a64 = CsrMatrix<double>::from_coo(laplacian);
  std::printf("graph Laplacian: n = %zu, nnz = %zu\n\n", a64.rows(), a64.nnz());

  // 2. Solve in float64 (baseline) and in bfloat16 (a 16-bit format).
  PartialSchurOptions opts;
  opts.nev = 10;
  opts.which = Which::largest_magnitude;

  opts.tolerance = NumTraits<double>::default_tolerance();  // 1e-12
  const auto r64 = partialschur<double>(a64, opts);

  const auto abf = a64.convert<BFloat16>();
  opts.tolerance = NumTraits<BFloat16>::default_tolerance();  // 1e-4
  const auto rbf = partialschur<BFloat16>(abf, opts);

  const auto a16 = a64.convert<Takum16>();
  const auto rt16 = partialschur<Takum16>(a16, opts);

  // 3. Compare eigenvalues.
  std::printf("%-4s %-16s %-16s %-16s\n", "#", "float64", "bfloat16", "takum16");
  for (std::size_t i = 0; i < 10; ++i) {
    std::printf("%-4zu %-16.10f %-16.10f %-16.10f\n", i,
                i < r64.eig_re.size() ? r64.eig_re[i] : 0.0,
                i < rbf.eig_re.size() ? rbf.eig_re[i] : 0.0,
                i < rt16.eig_re.size() ? rt16.eig_re[i] : 0.0);
  }
  std::printf("\nconverged: float64=%s (%d restarts), bfloat16=%s (%d), takum16=%s (%d)\n",
              r64.converged ? "yes" : "no", r64.restarts, rbf.converged ? "yes" : "no",
              rbf.restarts, rt16.converged ? "yes" : "no", rt16.restarts);
  return 0;
}
