// Quickstart: compute the 10 largest eigenpairs of a graph Laplacian in
// low-precision formats and compare against float64 — using the runtime
// Solver handles of the mfla::api facade (no templates at the call site).
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/quickstart
#include <cstdio>

#include "api/api.hpp"

int main() {
  using namespace mfla;

  // 1. Build a graph and its symmetrically normalized Laplacian.
  Rng rng("quickstart-graph");
  const CooMatrix adjacency = stochastic_block(/*n=*/200, /*blocks=*/4,
                                               /*p_in=*/0.25, /*p_out=*/0.02, rng);
  const CooMatrix laplacian = graph_laplacian_pipeline(adjacency);
  const auto a64 = CsrMatrix<double>::from_coo(laplacian);
  std::printf("graph Laplacian: n = %zu, nnz = %zu\n\n", a64.rows(), a64.nnz());

  // 2. Solve in float64 (baseline) and two 16-bit formats. The format is a
  //    runtime value; tolerance 0 means each format's default (1e-12 for
  //    float64, 1e-4 for the 16-bit formats).
  api::SolverOptions opts;
  opts.nev = 10;
  opts.which = Which::largest_magnitude;
  auto eigs = [&](FormatId format) {
    return api::Solver::create(format, api::SolverKind::krylov_schur, opts).solve(a64);
  };
  const auto r64 = eigs(FormatId::float64);
  const auto rbf = eigs(FormatId::bfloat16);
  const auto rt16 = eigs(FormatId::takum16);

  // 3. Compare eigenvalues.
  std::printf("%-4s %-16s %-16s %-16s\n", "#", "float64", "bfloat16", "takum16");
  for (std::size_t i = 0; i < 10; ++i) {
    std::printf("%-4zu %-16.10f %-16.10f %-16.10f\n", i,
                i < r64.eigenvalues.size() ? r64.eigenvalues[i] : 0.0,
                i < rbf.eigenvalues.size() ? rbf.eigenvalues[i] : 0.0,
                i < rt16.eigenvalues.size() ? rt16.eigenvalues[i] : 0.0);
  }
  std::printf("\nconverged: float64=%s (%d restarts), bfloat16=%s (%d), takum16=%s (%d)\n",
              r64.converged ? "yes" : "no", r64.restarts, rbf.converged ? "yes" : "no",
              rbf.restarts, rt16.converged ? "yes" : "no", rt16.restarts);
  return 0;
}
