// format_explorer: inspect the number formats of the study — dynamic
// ranges, precision profiles (fraction bits vs magnitude), and individual
// encodings.
//
// Usage:
//   format_explorer              # print the format comparison tables
//   format_explorer 3.14159      # show how each format rounds a value
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/api.hpp"

namespace {

using namespace mfla;

template <typename T>
void format_row(double probe) {
  const T v = NumTraits<T>::from_double(probe);
  const double back = NumTraits<T>::to_double(v);
  const double rel = probe != 0.0 ? std::abs(back - probe) / std::abs(probe) : 0.0;
  std::printf("  %-11s %24.17g   rel.err %.3e\n", NumTraits<T>::name().c_str(), back, rel);
}

void explore_value(double x) {
  std::printf("value %.17g in each format:\n", x);
  format_row<OFP8E4M3>(x);
  format_row<OFP8E5M2>(x);
  format_row<Posit8>(x);
  format_row<Takum8>(x);
  format_row<Float16>(x);
  format_row<BFloat16>(x);
  format_row<Posit16>(x);
  format_row<Takum16>(x);
  format_row<float>(x);
  format_row<Posit32>(x);
  format_row<Takum32>(x);
  format_row<double>(x);
  format_row<Posit64>(x);
  format_row<Takum64>(x);
}

/// Relative spacing (ulp/value) of format T at magnitude x, measured by
/// nudging the encoding by one step.
template <typename T>
double spacing_at(double x) {
  const T v = NumTraits<T>::from_double(x);
  const T up = T::from_bits(static_cast<typename T::Storage>(v.bits() + 1));
  if (up.is_nar()) return std::nan("");
  return std::abs(NumTraits<T>::to_double(up) - NumTraits<T>::to_double(v)) / std::abs(x);
}

template <>
double spacing_at<float>(double x) {
  return static_cast<double>(std::nextafterf(static_cast<float>(x), 1e38f) -
                             static_cast<float>(x)) / std::abs(x);
}
template <>
double spacing_at<double>(double x) {
  return (std::nextafter(x, 1e300) - x) / std::abs(x);
}

void precision_profile() {
  std::printf("\nrelative spacing (-log2) by magnitude — the taper profile:\n");
  std::printf("%10s  %8s %8s %8s %8s %8s\n", "magnitude", "float32", "posit32", "takum32",
              "posit16", "takum16");
  for (const int e : {-100, -60, -30, -10, -2, 0, 2, 10, 30, 60, 100}) {
    const double x = std::ldexp(1.37, e);
    auto bits = [](double s) { return std::isnan(s) ? 0.0 : -std::log2(s); };
    std::printf("%9s%+04d %8.1f %8.1f %8.1f %8.1f %8.1f\n", "2^", e, bits(spacing_at<float>(x)),
                bits(spacing_at<Posit32>(x)), bits(spacing_at<Takum32>(x)),
                bits(spacing_at<Posit16>(x)), bits(spacing_at<Takum16>(x)));
  }
}

void range_table() {
  std::printf("\ndynamic ranges:\n%12s %14s %14s\n", "format", "min positive", "max finite");
  auto row = [](const char* name, double lo, double hi) {
    std::printf("%12s %14.4e %14.4e\n", name, lo, hi);
  };
  row("OFP8 E4M3", OFP8E4M3::min_positive_subnormal().to_double(),
      OFP8E4M3::max_finite().to_double());
  row("OFP8 E5M2", OFP8E5M2::min_positive_subnormal().to_double(),
      OFP8E5M2::max_finite().to_double());
  row("posit8", Posit8::min_positive().to_double(), Posit8::max_positive().to_double());
  row("takum8", Takum8::min_positive().to_double(), Takum8::max_positive().to_double());
  row("float16", Float16::min_positive_subnormal().to_double(), Float16::max_finite().to_double());
  row("bfloat16", BFloat16::min_positive_subnormal().to_double(),
      BFloat16::max_finite().to_double());
  row("posit16", Posit16::min_positive().to_double(), Posit16::max_positive().to_double());
  row("takum16", Takum16::min_positive().to_double(), Takum16::max_positive().to_double());
  row("posit32", Posit32::min_positive().to_double(), Posit32::max_positive().to_double());
  row("takum32", Takum32::min_positive().to_double(), Takum32::max_positive().to_double());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    explore_value(std::atof(argv[1]));
    return 0;
  }
  explore_value(3.141592653589793);
  range_table();
  precision_profile();
  std::printf("\ntip: pass a number to inspect it, e.g. ./format_explorer 6.02e23\n");
  return 0;
}
