// graph_spectrum: spectral analysis of a synthetic social network across
// number formats — the paper's §3.4 scenario in miniature. Runs the full
// evaluation pipeline (reference in float128, Hungarian matching, error
// classification) on a single graph via the api::Sweep facade and prints
// a per-format scorecard.
#include <cstdio>

#include "api/api.hpp"

int main() {
  using namespace mfla;

  // A 3-community social network.
  Rng rng("graph-spectrum-example");
  const CooMatrix adjacency = stochastic_block(240, 3, 0.2, 0.015, rng);
  TestMatrix tm =
      make_test_matrix("example_social", "social", "soc", graph_laplacian_pipeline(adjacency));
  std::printf("social graph Laplacian: n = %zu, nnz = %zu\n", tm.n(), tm.nnz());

  // One-matrix sweep over the paper's full format lineup: nev=10 largest
  // eigenvalues plus 2 buffer pairs for the matching.
  const api::SweepResult sweep = api::Sweep::over({tm})
                                     .formats(api::evaluation_formats())
                                     .nev(10)
                                     .buffer(2)
                                     .restarts(80)
                                     .run();
  const MatrixResult& res = sweep.results.front();
  if (!res.reference_ok) {
    std::printf("reference solve failed: %s\n", res.reference_failure.c_str());
    return 1;
  }

  std::printf("\n%-12s %-10s %12s %12s %10s %9s\n", "format", "outcome", "eig rel.err",
              "vec rel.err", "cos-sim", "restarts");
  for (const auto& run : res.runs) {
    const char* outcome = run.outcome == RunOutcome::ok               ? "ok"
                          : run.outcome == RunOutcome::no_convergence ? "inf-omega"
                                                                      : "inf-sigma";
    if (run.outcome == RunOutcome::ok) {
      std::printf("%-12s %-10s %12.3e %12.3e %10.5f %9d\n",
                  format_info(run.format).name.c_str(), outcome, run.eigenvalue_error.relative,
                  run.eigenvector_error.relative, run.mean_similarity, run.restarts);
    } else {
      std::printf("%-12s %-10s %12s %12s %10s %9d\n", format_info(run.format).name.c_str(),
                  outcome, "-", "-", "-", run.restarts);
    }
  }

  std::printf("\nThe Fiedler-like structure: the 3 smallest Laplacian eigenvalues separate\n"
              "the communities; the 10 largest (computed here) sit in the bulk around 1.4.\n");
  return 0;
}
