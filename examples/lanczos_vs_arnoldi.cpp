// lanczos_vs_arnoldi: compare the general Krylov-Schur solver
// (partialschur, Arnoldi-based — what the paper uses) with the
// symmetric-specialized thick-restart Lanczos solver, across precisions.
//
// Both run with the same start vector and tolerances; on symmetric input
// they converge to the same invariant subspace, but their restart
// machinery differs (Francis QR real Schur vs Jacobi eigendecomposition),
// which makes this a useful robustness cross-check per format.
#include <chrono>
#include <cstdio>

#include "mfla.hpp"

namespace {

template <typename T>
void compare(const char* name, const mfla::CsrMatrix<double>& a,
             const std::vector<double>& start) {
  using namespace mfla;
  const auto at = a.convert<T>();
  PartialSchurOptions opts;
  opts.nev = 8;
  opts.tolerance = NumTraits<T>::default_tolerance();
  opts.max_restarts = 100;
  opts.start_vector = &start;

  const auto t0 = std::chrono::steady_clock::now();
  const auto arnoldi = partialschur<T>(at, opts);
  const auto t1 = std::chrono::steady_clock::now();
  const auto lanczos = lanczos_eigs<T>(at, opts);
  const auto t2 = std::chrono::steady_clock::now();

  double max_diff = 0.0;
  const std::size_t k = std::min(arnoldi.eig_re.size(), lanczos.eig_re.size());
  for (std::size_t i = 0; i < k; ++i) {
    max_diff = std::max(max_diff, std::abs(arnoldi.eig_re[i] - lanczos.eig_re[i]));
  }
  std::printf("%-10s arnoldi: conv=%d r=%3d mv=%4zu (%5.0f ms) | lanczos: conv=%d r=%3d mv=%4zu "
              "(%5.0f ms) | max eig diff %.2e\n",
              name, arnoldi.converged, arnoldi.restarts, arnoldi.matvecs,
              std::chrono::duration<double, std::milli>(t1 - t0).count(), lanczos.converged,
              lanczos.restarts, lanczos.matvecs,
              std::chrono::duration<double, std::milli>(t2 - t1).count(), max_diff);
}

}  // namespace

int main() {
  using namespace mfla;
  Rng rng("lanczos-vs-arnoldi");
  const CooMatrix lap = graph_laplacian_pipeline(barabasi_albert(300, 3, rng));
  const auto a = CsrMatrix<double>::from_coo(lap);
  std::printf("preferential-attachment graph Laplacian: n = %zu, nnz = %zu\n\n", a.rows(),
              a.nnz());
  Rng sr("start-vector");
  const auto start = sr.unit_vector(a.rows());

  compare<double>("float64", a, start);
  compare<float>("float32", a, start);
  compare<Takum32>("takum32", a, start);
  compare<Posit32>("posit32", a, start);
  compare<Float16>("float16", a, start);
  compare<Takum16>("takum16", a, start);
  compare<Posit16>("posit16", a, start);
  compare<BFloat16>("bfloat16", a, start);
  return 0;
}
