// lanczos_vs_arnoldi: compare the general Krylov-Schur solver (what the
// paper uses) with the symmetric-specialized thick-restart Lanczos solver,
// across precisions — as a pair of runtime api::Solver handles per format,
// so the whole sweep is a loop over FormatIds instead of a template
// instantiation per type.
//
// Both run with the same start vector and tolerances; on symmetric input
// they converge to the same invariant subspace, but their restart
// machinery differs (Francis QR real Schur vs Jacobi eigendecomposition),
// which makes this a useful robustness cross-check per format.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "api/api.hpp"

int main() {
  using namespace mfla;
  Rng rng("lanczos-vs-arnoldi");
  const CooMatrix lap = graph_laplacian_pipeline(barabasi_albert(300, 3, rng));
  const auto a = CsrMatrix<double>::from_coo(lap);
  std::printf("preferential-attachment graph Laplacian: n = %zu, nnz = %zu\n\n", a.rows(),
              a.nnz());
  Rng sr("start-vector");

  api::SolverOptions opts;
  opts.nev = 8;
  opts.max_restarts = 100;
  opts.start_vector = sr.unit_vector(a.rows());

  for (const FormatId format :
       {FormatId::float64, FormatId::float32, FormatId::takum32, FormatId::posit32,
        FormatId::float16, FormatId::takum16, FormatId::posit16, FormatId::bfloat16}) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto arnoldi =
        api::Solver::create(format, api::SolverKind::krylov_schur, opts).solve(a);
    const auto t1 = std::chrono::steady_clock::now();
    const auto lanczos = api::Solver::create(format, api::SolverKind::lanczos, opts).solve(a);
    const auto t2 = std::chrono::steady_clock::now();

    double max_diff = 0.0;
    const std::size_t k = std::min(arnoldi.eigenvalues.size(), lanczos.eigenvalues.size());
    for (std::size_t i = 0; i < k; ++i) {
      max_diff = std::max(max_diff, std::abs(arnoldi.eigenvalues[i] - lanczos.eigenvalues[i]));
    }
    std::printf(
        "%-10s arnoldi: conv=%d r=%3d mv=%4zu (%5.0f ms) | lanczos: conv=%d r=%3d mv=%4zu "
        "(%5.0f ms) | max eig diff %.2e\n",
        format_info(format).name.c_str(), arnoldi.converged, arnoldi.restarts, arnoldi.matvecs,
        std::chrono::duration<double, std::milli>(t1 - t0).count(), lanczos.converged,
        lanczos.restarts, lanczos.matvecs,
        std::chrono::duration<double, std::milli>(t2 - t1).count(), max_diff);
  }
  return 0;
}
