// matrix_market_eigs: load a symmetric sparse matrix from a Matrix Market
// file (or an edge-list graph, converted to its normalized Laplacian) and
// compare the 10 largest eigenpairs across formats.
//
// Usage:
//   matrix_market_eigs matrix.mtx [nev]
//   matrix_market_eigs graph.edges [nev]     # builds the Laplacian first
//
// Without arguments a small built-in demo matrix is used.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mfla.hpp"

namespace {

mfla::CooMatrix demo_matrix() {
  // 1-D Laplacian stencil, the classic symmetric test matrix.
  mfla::CooMatrix a(64, 64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    a.add(i, i, 2.0);
    if (i + 1 < 64) {
      a.add(i, i + 1, -1.0);
      a.add(i + 1, i, -1.0);
    }
  }
  return a;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfla;

  CooMatrix coo;
  std::string name = "demo_stencil";
  try {
    if (argc > 1) {
      name = argv[1];
      if (ends_with(name, ".edges")) {
        coo = graph_laplacian_pipeline(read_edge_list_file(name));
      } else {
        coo = read_matrix_market_file(name);
        if (!coo.is_symmetric(1e-12)) {
          std::printf("note: input not symmetric; applying (A + A^T)/2\n");
          coo = symmetrize_average(squarify(coo));
        }
      }
    } else {
      coo = demo_matrix();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  TestMatrix tm = make_test_matrix(name, "general", "user", coo);
  std::printf("matrix '%s': n = %zu, nnz = %zu\n\n", name.c_str(), tm.n(), tm.nnz());

  ExperimentConfig cfg;
  cfg.nev = (argc > 2) ? static_cast<std::size_t>(std::atoi(argv[2])) : 10;
  cfg.max_restarts = 100;
  if (tm.n() < cfg.nev + cfg.buffer + 4) {
    std::fprintf(stderr, "matrix too small for nev=%zu\n", cfg.nev);
    return 1;
  }

  const std::vector<FormatId> formats = {
      FormatId::ofp8_e4m3, FormatId::ofp8_e5m2, FormatId::posit8,  FormatId::takum8,
      FormatId::float16,   FormatId::bfloat16,  FormatId::posit16, FormatId::takum16,
      FormatId::float32,   FormatId::posit32,   FormatId::takum32, FormatId::float64,
      FormatId::posit64,   FormatId::takum64};
  const MatrixResult res = run_matrix(tm, formats, cfg);
  if (!res.reference_ok) {
    std::fprintf(stderr, "reference solve failed: %s\n", res.reference_failure.c_str());
    return 1;
  }

  std::printf("%-12s %-10s %12s %12s\n", "format", "outcome", "eig rel.err", "vec rel.err");
  for (const auto& run : res.runs) {
    const char* outcome = run.outcome == RunOutcome::ok               ? "ok"
                          : run.outcome == RunOutcome::no_convergence ? "inf-omega"
                                                                      : "inf-sigma";
    if (run.outcome == RunOutcome::ok) {
      std::printf("%-12s %-10s %12.3e %12.3e\n", format_info(run.format).name.c_str(), outcome,
                  run.eigenvalue_error.relative, run.eigenvector_error.relative);
    } else {
      std::printf("%-12s %-10s %12s %12s\n", format_info(run.format).name.c_str(), outcome, "-",
                  "-");
    }
  }
  return 0;
}
