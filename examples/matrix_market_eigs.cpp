// matrix_market_eigs: load a symmetric sparse matrix from a Matrix Market
// file (or an edge-list graph, converted to its normalized Laplacian) and
// compare the 10 largest eigenpairs across formats.
//
// Usage:
//   matrix_market_eigs matrix.mtx [nev]
//   matrix_market_eigs graph.edges [nev]     # builds the Laplacian first
//
// Without arguments a small built-in demo matrix is used.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/api.hpp"

namespace {

mfla::CooMatrix demo_matrix() {
  // 1-D Laplacian stencil, the classic symmetric test matrix.
  mfla::CooMatrix a(64, 64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    a.add(i, i, 2.0);
    if (i + 1 < 64) {
      a.add(i, i + 1, -1.0);
      a.add(i + 1, i, -1.0);
    }
  }
  return a;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mfla;

  CooMatrix coo;
  std::string name = "demo_stencil";
  try {
    if (argc > 1) {
      name = argv[1];
      if (ends_with(name, ".edges")) {
        coo = graph_laplacian_pipeline(read_edge_list_file(name));
      } else {
        coo = read_matrix_market_file(name);
        if (!coo.is_symmetric(1e-12)) {
          std::printf("note: input not symmetric; applying (A + A^T)/2\n");
          coo = symmetrize_average(squarify(coo));
        }
      }
    } else {
      coo = demo_matrix();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  TestMatrix tm = make_test_matrix(name, "general", "user", coo);
  std::printf("matrix '%s': n = %zu, nnz = %zu\n\n", name.c_str(), tm.n(), tm.nnz());

  const std::size_t nev = (argc > 2) ? static_cast<std::size_t>(std::atoi(argv[2])) : 10;
  const std::size_t buffer = 2;
  if (tm.n() < nev + buffer + 4) {
    std::fprintf(stderr, "matrix too small for nev=%zu\n", nev);
    return 1;
  }

  // One-matrix sweep across the full format lineup (keys resolved by the
  // registry — same strings the mfla_experiment CLI accepts).
  api::SweepResult sweep;
  try {
    sweep = api::Sweep::over({tm})
                .formats("e4m3,e5m2,p8,t8,f16,bf16,p16,t16,f32,p32,t32,f64,p64,t64")
                .nev(nev)
                .buffer(buffer)
                .restarts(100)
                .run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const MatrixResult& res = sweep.results.front();
  if (!res.reference_ok) {
    std::fprintf(stderr, "reference solve failed: %s\n", res.reference_failure.c_str());
    return 1;
  }

  std::printf("%-12s %-10s %12s %12s\n", "format", "outcome", "eig rel.err", "vec rel.err");
  for (const auto& run : res.runs) {
    const char* outcome = run.outcome == RunOutcome::ok               ? "ok"
                          : run.outcome == RunOutcome::no_convergence ? "inf-omega"
                                                                      : "inf-sigma";
    if (run.outcome == RunOutcome::ok) {
      std::printf("%-12s %-10s %12.3e %12.3e\n", format_info(run.format).name.c_str(), outcome,
                  run.eigenvalue_error.relative, run.eigenvector_error.relative);
    } else {
      std::printf("%-12s %-10s %12s %12s\n", format_info(run.format).name.c_str(), outcome, "-",
                  "-");
    }
  }
  return 0;
}
